package workloads

import "wizgo/internal/wasm"

// Ostrich returns the 11 numerical-computing line items mirroring the
// Ostrich benchmark suite (Herrera et al.): mixed float/integer kernels
// with both regular and irregular memory access, including recursion and
// indirect data-dependent control flow.
func Ostrich() []Item {
	return []Item{
		gen(SuiteOstrich, "nbody", func(k *K) { osNBody(k, 48, 6) }),
		gen(SuiteOstrich, "spmv", func(k *K) { osSpmv(k, 360, 16, 14) }),
		gen(SuiteOstrich, "bfs", func(k *K) { osBfs(k, 1600, 5) }),
		gen(SuiteOstrich, "crc", func(k *K) { osCrc(k, 14000) }),
		gen(SuiteOstrich, "lud", func(k *K) { pbLU(k, 34) }),
		gen(SuiteOstrich, "nqueens", func(k *K) { osNQueens(k, 8) }),
		gen(SuiteOstrich, "fft", func(k *K) { osFft(k, 9, 4) }),
		gen(SuiteOstrich, "primes", func(k *K) { osPrimes(k, 22000) }),
		gen(SuiteOstrich, "pagerank", func(k *K) { osPageRank(k, 220, 14) }),
		gen(SuiteOstrich, "srad", func(k *K) { osSrad(k, 26, 8) }),
		gen(SuiteOstrich, "montecarlo", func(k *K) { osMonteCarlo(k, 16000) }),
	}
}

// osNBody: n-body gravitational simulation, `steps` leapfrog steps.
func osNBody(k *K, n, steps int32) {
	f := k.F
	i, j, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	fx, fy := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	dx, dy := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	inv := f.AddLocal(wasm.F64)
	// pos x/y, vel x/y as f64 vectors.
	const px, py, vx2, vy2 = vX, vY, vZ, vW
	k.InitVec(px, n, i)
	k.InitVec(py, n, i)
	k.ForI32(i, 0, n, func() {
		k.StoreVec(vx2, i, func() { f.F64Const(0) })
		k.StoreVec(vy2, i, func() { f.F64Const(0) })
	})
	k.ForI32(t, 0, steps, func() {
		k.ForI32(i, 0, n, func() {
			f.F64Const(0).LocalSet(fx)
			f.F64Const(0).LocalSet(fy)
			k.ForI32(j, 0, n, func() {
				k.LoadVec(px, j)
				k.LoadVec(px, i)
				f.Op(wasm.OpF64Sub).LocalSet(dx)
				k.LoadVec(py, j)
				k.LoadVec(py, i)
				f.Op(wasm.OpF64Sub).LocalSet(dy)
				// inv = 1 / (dx^2 + dy^2 + eps)^(3/2)
				f.LocalGet(dx).LocalGet(dx).Op(wasm.OpF64Mul)
				f.LocalGet(dy).LocalGet(dy).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
				f.F64Const(0.01).Op(wasm.OpF64Add)
				f.LocalSet(inv)
				f.F64Const(1)
				f.LocalGet(inv).LocalGet(inv).Op(wasm.OpF64Mul)
				f.LocalGet(inv).Op(wasm.OpF64Sqrt)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Div)
				f.LocalSet(inv)
				f.LocalGet(fx).LocalGet(dx).LocalGet(inv).Op(wasm.OpF64Mul).Op(wasm.OpF64Add).LocalSet(fx)
				f.LocalGet(fy).LocalGet(dy).LocalGet(inv).Op(wasm.OpF64Mul).Op(wasm.OpF64Add).LocalSet(fy)
			})
			k.StoreVec(vx2, i, func() {
				k.LoadVec(vx2, i)
				f.LocalGet(fx).F64Const(0.001).Op(wasm.OpF64Mul).Op(wasm.OpF64Add)
			})
			k.StoreVec(vy2, i, func() {
				k.LoadVec(vy2, i)
				f.LocalGet(fy).F64Const(0.001).Op(wasm.OpF64Mul).Op(wasm.OpF64Add)
			})
		})
		k.ForI32(i, 0, n, func() {
			k.StoreVec(px, i, func() {
				k.LoadVec(px, i)
				k.LoadVec(vx2, i)
				f.F64Const(0.001).Op(wasm.OpF64Mul).Op(wasm.OpF64Add)
			})
			k.StoreVec(py, i, func() {
				k.LoadVec(py, i)
				k.LoadVec(vy2, i)
				f.F64Const(0.001).Op(wasm.OpF64Mul).Op(wasm.OpF64Add)
			})
		})
	})
	k.ChecksumVec(px, n, i)
	k.ChecksumVec(py, n, i)
}

// osSpmv: sparse matrix-vector multiply in CSR-like form with
// pseudo-random column indices, `iters` products.
func osSpmv(k *K, rows, nnzPerRow, iters int32) {
	f := k.F
	i, j, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	col := f.AddLocal(wasm.I32)
	// values f64 at mA, x at vX, y at vY; col computed on the fly from
	// a hash of (i,j) to model irregular access.
	k.InitVec(vX, rows, i)
	k.ForI32(i, 0, rows*nnzPerRow, func() {
		k.StoreVec(mA, i, func() {
			f.LocalGet(i).I32Const(17).Op(wasm.OpI32Mul).I32Const(41).Op(wasm.OpI32RemS)
			f.Op(wasm.OpF64ConvertI32S)
			f.F64Const(1.0 / 41.0).Op(wasm.OpF64Mul)
		})
	})
	k.ForI32(t, 0, iters, func() {
		k.ForI32(i, 0, rows, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32(j, 0, nnzPerRow, func() {
				// col = hash(i,j) % rows
				f.LocalGet(i).I32Const(-1640531535).Op(wasm.OpI32Mul)
				f.LocalGet(j).I32Const(40503).Op(wasm.OpI32Mul)
				f.Op(wasm.OpI32Add)
				f.I32Const(16).Op(wasm.OpI32ShrU)
				f.I32Const(rows).Op(wasm.OpI32RemU)
				f.LocalSet(col)
				// acc += val[i*nnz+j] * x[col]
				f.LocalGet(i).I32Const(nnzPerRow).Op(wasm.OpI32Mul)
				f.LocalGet(j).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				f.Load(wasm.OpF64Load, 0)
				k.LoadVec(vX, col)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreVec(vY, i, func() { f.LocalGet(acc) })
		})
		// x <- normalized y (cheap copy)
		k.ForI32(i, 0, rows, func() {
			k.StoreVec(vX, i, func() {
				k.LoadVec(vY, i)
				f.F64Const(0.125).Op(wasm.OpF64Mul)
			})
		})
	})
	k.ChecksumVec(vX, rows, i)
}

// osBfs: breadth-first search over a synthetic graph in memory using an
// explicit frontier queue — data-dependent branching and irregular loads.
func osBfs(k *K, nodes, deg int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	head, tail := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	cur, nxt := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	// dist i32 at mA; queue i32 at mB; edges computed by hashing.
	k.ForI32(i, 0, nodes, func() {
		f.LocalGet(i).I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
		f.I32Const(-1)
		f.Store(wasm.OpI32Store, 0)
	})
	// dist[0] = 0; queue[0] = 0
	f.I32Const(mA).I32Const(0).Store(wasm.OpI32Store, 0)
	f.I32Const(mB).I32Const(0).Store(wasm.OpI32Store, 0)
	f.I32Const(0).LocalSet(head)
	f.I32Const(1).LocalSet(tail)
	f.Block(wasm.BlockEmpty)
	f.Loop(wasm.BlockEmpty)
	{
		f.LocalGet(head).LocalGet(tail).Op(wasm.OpI32GeS).BrIf(1)
		// cur = queue[head++]
		f.LocalGet(head).I32Const(4).Op(wasm.OpI32Mul).I32Const(mB).Op(wasm.OpI32Add)
		f.Load(wasm.OpI32Load, 0).LocalSet(cur)
		f.LocalGet(head).I32Const(1).Op(wasm.OpI32Add).LocalSet(head)
		k.ForI32(j, 0, deg, func() {
			// nxt = hash(cur, j) % nodes
			f.LocalGet(cur).I32Const(-1640531535).Op(wasm.OpI32Mul)
			f.LocalGet(j).I32Const(97).Op(wasm.OpI32Mul)
			f.Op(wasm.OpI32Add)
			f.I32Const(15).Op(wasm.OpI32ShrU)
			f.I32Const(nodes).Op(wasm.OpI32RemU)
			f.LocalSet(nxt)
			// if dist[nxt] < 0 { dist[nxt] = dist[cur]+1; queue[tail++] = nxt }
			f.LocalGet(nxt).I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
			f.Load(wasm.OpI32Load, 0)
			f.I32Const(0).Op(wasm.OpI32LtS)
			f.If(wasm.BlockEmpty)
			f.LocalGet(nxt).I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
			f.LocalGet(cur).I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
			f.Load(wasm.OpI32Load, 0)
			f.I32Const(1).Op(wasm.OpI32Add)
			f.Store(wasm.OpI32Store, 0)
			f.LocalGet(tail).I32Const(4).Op(wasm.OpI32Mul).I32Const(mB).Op(wasm.OpI32Add)
			f.LocalGet(nxt)
			f.Store(wasm.OpI32Store, 0)
			f.LocalGet(tail).I32Const(1).Op(wasm.OpI32Add).LocalSet(tail)
			f.End()
		})
		f.Br(0)
	}
	f.End()
	f.End()
	k.ChecksumMem(mA, nodes*4, i)
}

// osCrc: CRC-32 with an in-memory table over n bytes.
func osCrc(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	c := f.AddLocal(wasm.I32)
	// Build the table at mA (256 u32 entries).
	k.ForI32(i, 0, 256, func() {
		f.LocalGet(i).LocalSet(c)
		k.ForI32(j, 0, 8, func() {
			f.LocalGet(c).I32Const(1).Op(wasm.OpI32And)
			f.If(wasm.BlockEmpty)
			f.LocalGet(c).I32Const(1).Op(wasm.OpI32ShrU)
			f.I32Const(-306674912).Op(wasm.OpI32Xor) // 0xEDB88320
			f.LocalSet(c)
			f.Else()
			f.LocalGet(c).I32Const(1).Op(wasm.OpI32ShrU).LocalSet(c)
			f.End()
		})
		f.LocalGet(i).I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
		f.LocalGet(c)
		f.Store(wasm.OpI32Store, 0)
	})
	// crc over synthetic bytes i*31&0xff
	f.I32Const(-1).LocalSet(c)
	k.ForI32(i, 0, n, func() {
		f.LocalGet(c)
		f.LocalGet(i).I32Const(31).Op(wasm.OpI32Mul).I32Const(255).Op(wasm.OpI32And)
		f.Op(wasm.OpI32Xor)
		f.I32Const(255).Op(wasm.OpI32And)
		f.I32Const(4).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
		f.Load(wasm.OpI32Load, 0)
		f.LocalGet(c).I32Const(8).Op(wasm.OpI32ShrU)
		f.Op(wasm.OpI32Xor)
		f.LocalSet(c)
	})
	f.LocalGet(c).Op(wasm.OpI64ExtendI32U)
	k.Mix()
}

// osNQueens: recursive backtracking N-queens via an auxiliary function —
// the suite's call-heavy item.
func osNQueens(k *K, n int32) {
	b := k.B
	// solve(row, cols, diag1, diag2) -> count
	ft := wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32, wasm.I32, wasm.I32, wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	}
	solve := b.NewFunc("solve", ft)
	{
		f := solve
		cnt := f.AddLocal(wasm.I32)
		col := f.AddLocal(wasm.I32)
		full := int32((1 << uint(n)) - 1)
		// if row == n: return 1
		f.LocalGet(0).I32Const(n).Op(wasm.OpI32Eq)
		f.If(wasm.BlockEmpty)
		f.I32Const(1).Op(wasm.OpReturn)
		f.End()
		ForI32Func(f, col, 0, n, func() {
			// bit = 1 << col; if free in cols|diag1|diag2:
			f.I32Const(1).LocalGet(col).Op(wasm.OpI32Shl)
			f.LocalGet(1).LocalGet(2).Op(wasm.OpI32Or).LocalGet(3).Op(wasm.OpI32Or)
			f.Op(wasm.OpI32And)
			f.Op(wasm.OpI32Eqz)
			f.If(wasm.BlockEmpty)
			// cnt += solve(row+1, cols|bit, ((diag1|bit)<<1)&full, (diag2|bit)>>1)
			f.LocalGet(0).I32Const(1).Op(wasm.OpI32Add)
			f.LocalGet(1).I32Const(1).LocalGet(col).Op(wasm.OpI32Shl).Op(wasm.OpI32Or)
			f.LocalGet(2).I32Const(1).LocalGet(col).Op(wasm.OpI32Shl).Op(wasm.OpI32Or)
			f.I32Const(1).Op(wasm.OpI32Shl).I32Const(full).Op(wasm.OpI32And)
			f.LocalGet(3).I32Const(1).LocalGet(col).Op(wasm.OpI32Shl).Op(wasm.OpI32Or)
			f.I32Const(1).Op(wasm.OpI32ShrU)
			f.Call(solve.Idx)
			f.LocalGet(cnt).Op(wasm.OpI32Add).LocalSet(cnt)
			f.End()
		})
		f.LocalGet(cnt)
		f.End()
	}
	f := k.F
	f.I32Const(0).I32Const(0).I32Const(0).I32Const(0)
	f.Call(solve.Idx)
	f.Op(wasm.OpI64ExtendI32U)
	k.Mix()
}

// osFft: iterative radix-2 FFT butterflies on 2^logN complex points,
// repeated `reps` times.
func osFft(k *K, logN, reps int32) {
	f := k.F
	n := int32(1) << uint(logN)
	i, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	size, half := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	base, off := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	wr, wi := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	tr, ti := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	// re at vX, im at vY.
	k.InitVec(vX, n, i)
	k.InitVec(vY, n, i)
	idxAddr := func(vec int32, idx uint32, plus uint32) {
		f.LocalGet(idx)
		if plus != 0 {
			f.LocalGet(plus).Op(wasm.OpI32Add)
		}
		f.I32Const(8).Op(wasm.OpI32Mul)
		f.I32Const(vec).Op(wasm.OpI32Add)
	}
	k.ForI32(t, 0, reps, func() {
		// for size = 2; size <= n; size *= 2
		f.I32Const(2).LocalSet(size)
		f.Block(wasm.BlockEmpty)
		f.Loop(wasm.BlockEmpty)
		{
			f.LocalGet(size).I32Const(n).Op(wasm.OpI32GtS).BrIf(1)
			f.LocalGet(size).I32Const(1).Op(wasm.OpI32ShrS).LocalSet(half)
			// for base = 0; base < n; base += size
			f.I32Const(0).LocalSet(base)
			f.Block(wasm.BlockEmpty)
			f.Loop(wasm.BlockEmpty)
			{
				f.LocalGet(base).I32Const(n).Op(wasm.OpI32GeS).BrIf(1)
				k.ForI32N(off, uint32(half), func() {
					// twiddle ~ cheap polynomial of off/half
					f.LocalGet(off).Op(wasm.OpF64ConvertI32S)
					f.LocalGet(half).Op(wasm.OpF64ConvertI32S)
					f.Op(wasm.OpF64Div).LocalSet(wr)
					f.F64Const(1)
					f.LocalGet(wr).LocalGet(wr).Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub).LocalSet(wi)
					// butterflies: a = base+off, b = a+half
					f.LocalGet(base).LocalGet(off).Op(wasm.OpI32Add).LocalSet(i)
					// tr = wr*re[b] - wi*im[b]; ti = wr*im[b] + wi*re[b]
					f.LocalGet(wr)
					idxAddr(vX, i, uint32(half))
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Mul)
					f.LocalGet(wi)
					idxAddr(vY, i, uint32(half))
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub)
					f.LocalSet(tr)
					f.LocalGet(wr)
					idxAddr(vY, i, uint32(half))
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Mul)
					f.LocalGet(wi)
					idxAddr(vX, i, uint32(half))
					f.Load(wasm.OpF64Load, 0)
					f.Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Add)
					f.LocalSet(ti)
					// re[b] = re[a]-tr; im[b] = im[a]-ti; re[a]+=tr; im[a]+=ti
					idxAddr(vX, i, uint32(half))
					idxAddr(vX, i, 0)
					f.Load(wasm.OpF64Load, 0)
					f.LocalGet(tr).Op(wasm.OpF64Sub)
					f.Store(wasm.OpF64Store, 0)
					idxAddr(vY, i, uint32(half))
					idxAddr(vY, i, 0)
					f.Load(wasm.OpF64Load, 0)
					f.LocalGet(ti).Op(wasm.OpF64Sub)
					f.Store(wasm.OpF64Store, 0)
					idxAddr(vX, i, 0)
					idxAddr(vX, i, 0)
					f.Load(wasm.OpF64Load, 0)
					f.LocalGet(tr).Op(wasm.OpF64Add)
					f.Store(wasm.OpF64Store, 0)
					idxAddr(vY, i, 0)
					idxAddr(vY, i, 0)
					f.Load(wasm.OpF64Load, 0)
					f.LocalGet(ti).Op(wasm.OpF64Add)
					f.Store(wasm.OpF64Store, 0)
				})
				f.LocalGet(base).LocalGet(size).Op(wasm.OpI32Add).LocalSet(base)
				f.Br(0)
			}
			f.End()
			f.End()
			f.LocalGet(size).I32Const(1).Op(wasm.OpI32Shl).LocalSet(size)
			f.Br(0)
		}
		f.End()
		f.End()
	})
	k.ChecksumVec(vX, n, i)
	k.ChecksumVec(vY, n, i)
}

// osPrimes: sieve of Eratosthenes over n flags.
func osPrimes(k *K, n int32) {
	f := k.F
	i, j, cnt := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	k.ForI32(i, 0, n, func() {
		f.LocalGet(i).I32Const(mA).Op(wasm.OpI32Add)
		f.I32Const(1)
		f.Store(wasm.OpI32Store8, 0)
	})
	k.ForI32(i, 2, n, func() {
		f.LocalGet(i).I32Const(mA).Op(wasm.OpI32Add).Load(wasm.OpI32Load8U, 0)
		f.If(wasm.BlockEmpty)
		// for j = i*i; j < n; j += i   (guard i*i < n)
		f.LocalGet(i).LocalGet(i).Op(wasm.OpI32Mul).LocalSet(j)
		f.Block(wasm.BlockEmpty)
		f.Loop(wasm.BlockEmpty)
		f.LocalGet(j).I32Const(n).Op(wasm.OpI32GeS).BrIf(1)
		f.LocalGet(j).I32Const(mA).Op(wasm.OpI32Add)
		f.I32Const(0)
		f.Store(wasm.OpI32Store8, 0)
		f.LocalGet(j).LocalGet(i).Op(wasm.OpI32Add).LocalSet(j)
		f.Br(0)
		f.End()
		f.End()
		f.End()
	})
	k.ForI32(i, 2, n, func() {
		f.LocalGet(i).I32Const(mA).Op(wasm.OpI32Add).Load(wasm.OpI32Load8U, 0)
		f.LocalGet(cnt).Op(wasm.OpI32Add).LocalSet(cnt)
	})
	f.LocalGet(cnt).Op(wasm.OpI64ExtendI32U)
	k.Mix()
}

// osPageRank: power iteration over a hashed synthetic link graph.
func osPageRank(k *K, nodes, iters int32) {
	f := k.F
	i, j, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	dst := f.AddLocal(wasm.I32)
	const deg = 6
	k.ForI32(i, 0, nodes, func() {
		k.StoreVec(vX, i, func() { f.F64Const(1) })
		k.StoreVec(vY, i, func() { f.F64Const(0) })
	})
	k.ForI32(t, 0, iters, func() {
		k.ForI32(i, 0, nodes, func() {
			k.StoreVec(vY, i, func() { f.F64Const(0.15) })
		})
		k.ForI32(i, 0, nodes, func() {
			k.ForI32(j, 0, deg, func() {
				f.LocalGet(i).I32Const(-1640531535).Op(wasm.OpI32Mul)
				f.LocalGet(j).I32Const(193).Op(wasm.OpI32Mul)
				f.Op(wasm.OpI32Add)
				f.I32Const(13).Op(wasm.OpI32ShrU)
				f.I32Const(nodes).Op(wasm.OpI32RemU)
				f.LocalSet(dst)
				k.StoreVec(vY, dst, func() {
					k.LoadVec(vY, dst)
					k.LoadVec(vX, i)
					f.F64Const(0.85 / deg).Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Add)
				})
			})
		})
		k.ForI32(i, 0, nodes, func() {
			k.StoreVec(vX, i, func() { k.LoadVec(vY, i) })
		})
	})
	k.ChecksumVec(vX, nodes, i)
}

// osSrad: SRAD-style diffusion stencil with data-dependent coefficients.
func osSrad(k *K, n, iters int32) {
	f := k.F
	i, j, t := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	g2, lap, coef := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	A, B := Mat{mA, n}, Mat{mB, n}
	k.InitMat(A, n, i, j)
	k.ForI32(t, 0, iters, func() {
		k.ForI32(i, 1, n-1, func() {
			k.ForI32(j, 1, n-1, func() {
				// lap = N+S+E+W - 4*c
				f.LocalGet(i).I32Const(1).Op(wasm.OpI32Sub).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(j).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				f.Load(wasm.OpF64Load, 0)
				f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(j).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				f.Load(wasm.OpF64Load, 0)
				f.Op(wasm.OpF64Add)
				f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(j).I32Const(1).Op(wasm.OpI32Sub).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				f.Load(wasm.OpF64Load, 0)
				f.Op(wasm.OpF64Add)
				f.LocalGet(i).I32Const(n).Op(wasm.OpI32Mul)
				f.LocalGet(j).I32Const(1).Op(wasm.OpI32Add).Op(wasm.OpI32Add)
				f.I32Const(8).Op(wasm.OpI32Mul).I32Const(mA).Op(wasm.OpI32Add)
				f.Load(wasm.OpF64Load, 0)
				f.Op(wasm.OpF64Add)
				k.LoadEl(A, i, j)
				f.F64Const(4).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Sub)
				f.LocalSet(lap)
				// g2 = (lap/c)^2; coef = 1/(1+g2)
				f.LocalGet(lap)
				k.LoadEl(A, i, j)
				f.F64Const(1e-6).Op(wasm.OpF64Add)
				f.Op(wasm.OpF64Div)
				f.LocalSet(g2)
				f.F64Const(1)
				f.F64Const(1)
				f.LocalGet(g2).LocalGet(g2).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
				f.Op(wasm.OpF64Div)
				f.LocalSet(coef)
				k.StoreEl(B, i, j, func() {
					k.LoadEl(A, i, j)
					f.LocalGet(coef).LocalGet(lap).Op(wasm.OpF64Mul)
					f.F64Const(0.125).Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Add)
				})
			})
		})
		k.ForI32(i, 1, n-1, func() {
			k.ForI32(j, 1, n-1, func() {
				k.StoreEl(A, i, j, func() { k.LoadEl(B, i, j) })
			})
		})
	})
	k.ChecksumMat(A, n, i, j)
}

// osMonteCarlo: LCG-driven Monte Carlo integration of a disc area.
func osMonteCarlo(k *K, samples int32) {
	f := k.F
	s := f.AddLocal(wasm.I64)
	i, hits := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	x, y := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	f.I64Const(88172645463325252).LocalSet(s)
	next := func(dst uint32) {
		// s = s*6364136223846793005 + 1442695040888963407; dst = (s>>11)/2^53
		f.LocalGet(s).I64Const(6364136223846793005).Op(wasm.OpI64Mul)
		f.I64Const(1442695040888963407).Op(wasm.OpI64Add)
		f.LocalSet(s)
		f.LocalGet(s).I64Const(11).Op(wasm.OpI64ShrU)
		f.Op(wasm.OpF64ConvertI64U)
		f.F64Const(1.0 / 9007199254740992.0).Op(wasm.OpF64Mul)
		f.LocalSet(dst)
	}
	k.ForI32(i, 0, samples, func() {
		next(x)
		next(y)
		f.LocalGet(x).LocalGet(x).Op(wasm.OpF64Mul)
		f.LocalGet(y).LocalGet(y).Op(wasm.OpF64Mul)
		f.Op(wasm.OpF64Add)
		f.F64Const(1).Op(wasm.OpF64Lt)
		f.LocalGet(hits).Op(wasm.OpI32Add).LocalSet(hits)
	})
	f.LocalGet(hits).Op(wasm.OpI64ExtendI32U)
	k.Mix()
}
