// Package workloads synthesizes the three benchmark suites of the
// paper's evaluation: PolyBenchC (28 numerical kernels), Libsodium (39
// cryptographic primitive benchmarks) and Ostrich (11 numerical/graph
// kernels). The original suites are C code compiled to Wasm; here each
// line item is generated directly as a Wasm module with the same
// instruction mix (f64 loop nests for PolyBench, i32/i64 bit mixing for
// Libsodium, mixed numeric/irregular access for Ostrich), one module per
// line item, exporting:
//
//	_start    () -> ()   the workload entry point (what gets timed)
//	checksum  () -> i64  a result digest, letting the harness verify
//	                     that every engine tier computed the same thing
//
// Each item also carries an "early-return" variant (the paper's m0
// module) used to bound per-module setup time, and the suite provides
// Mnop, the paper's minimal module, for VM startup measurement.
package workloads

import (
	"fmt"

	"wizgo/internal/wasm"
)

// Item is one benchmark line item.
type Item struct {
	Suite string
	Name  string
	// Bytes is the full module; BytesM0 is the same module whose
	// _start returns immediately (setup-time probe).
	Bytes   []byte
	BytesM0 []byte
}

// Suite names.
const (
	SuitePolyBench = "polybench"
	SuiteLibsodium = "libsodium"
	SuiteOstrich   = "ostrich"
)

// All returns every line item of the three suites: 28 + 39 + 11 = 78.
func All() []Item {
	var items []Item
	items = append(items, PolyBench()...)
	items = append(items, Libsodium()...)
	items = append(items, Ostrich()...)
	return items
}

// Mnop returns the paper's minimal module: a single exported function
// that just returns (used to measure bare VM startup).
func Mnop() []byte {
	b := wasm.NewBuilder()
	f := b.NewFunc("_start", wasm.FuncType{})
	f.End()
	b.Export("_start", f.Idx)
	return b.Encode()
}

// gen builds an item twice: the real workload and the early-return (m0)
// variant.
func gen(suite, name string, build func(k *K)) Item {
	return Item{
		Suite:   suite,
		Name:    name,
		Bytes:   build2(build, false),
		BytesM0: build2(build, true),
	}
}

func build2(build func(k *K), early bool) []byte {
	k := newK(early)
	build(k)
	return k.finish()
}

// K is the kernel-construction context: a module with one linear memory,
// a checksum global, and a _start function under construction.
type K struct {
	B     *wasm.Builder
	F     *wasm.FuncBuilder
	early bool
	// ck is a mutable i64 global accumulating the checksum.
	ck uint32
}

func newK(early bool) *K {
	b := wasm.NewBuilder()
	k := &K{B: b, early: early}
	b.AddMemory(16, 16) // 1 MiB
	k.ck = b.AddGlobal(wasm.I64, true, wasm.ValI64(0))
	k.F = b.NewFunc("_start", wasm.FuncType{})
	if early {
		// The paper's m0: insert an early return in _start.
		k.F.Op(wasm.OpReturn)
	}
	return k
}

func (k *K) finish() []byte {
	k.F.Finish()
	b := k.B
	b.Export("_start", k.F.Idx)
	cs := b.NewFunc("checksum", wasm.FuncType{Results: []wasm.ValueType{wasm.I64}})
	cs.GlobalGet(k.ck).End()
	b.Export("checksum", cs.Idx)
	return b.Encode()
}

// Mix folds the i64 on top of the stack into the checksum global.
func (k *K) Mix() {
	f := k.F
	f.GlobalGet(k.ck)
	f.Op(wasm.OpI64Add)
	f.I64Const(-7046029254386353131)
	f.Op(wasm.OpI64Xor)
	f.I64Const(31).Op(wasm.OpI64Rotl)
	f.GlobalSet(k.ck)
}

// MixF64 folds the f64 on top of the stack into the checksum.
func (k *K) MixF64() {
	k.F.Op(wasm.OpI64ReinterpretF64)
	k.Mix()
}

// ForI32 emits a counted loop: for local := start; local < end; local++
// { body() }. end must be a positive constant; body must leave the
// operand stack balanced.
func (k *K) ForI32(local uint32, start, end int32, body func()) {
	ForI32Func(k.F, local, start, end, body)
}

// ForI32Func is ForI32 over an arbitrary function under construction
// (used by kernels that define helper functions, e.g. nqueens).
func ForI32Func(f *wasm.FuncBuilder, local uint32, start, end int32, body func()) {
	f.I32Const(start).LocalSet(local)
	if start >= end {
		return
	}
	f.Loop(wasm.BlockEmpty)
	body()
	f.LocalGet(local).I32Const(1).Op(wasm.OpI32Add).LocalTee(local)
	f.I32Const(end).Op(wasm.OpI32LtS)
	f.BrIf(0)
	f.End()
}

// ForI32N is ForI32 with the bound in another local.
func (k *K) ForI32N(local, endLocal uint32, body func()) {
	f := k.F
	f.I32Const(0).LocalSet(local)
	f.Block(wasm.BlockEmpty)
	f.LocalGet(endLocal).I32Const(0).Op(wasm.OpI32LeS).BrIf(0)
	f.Loop(wasm.BlockEmpty)
	body()
	f.LocalGet(local).I32Const(1).Op(wasm.OpI32Add).LocalTee(local)
	f.LocalGet(endLocal).Op(wasm.OpI32LtS)
	f.BrIf(0)
	f.End()
	f.End()
}

// Mat is a dense row-major f64 matrix in linear memory.
type Mat struct {
	Base int32
	Cols int32
}

// ElemAddr pushes the byte address of m[i][j] (locals i, j).
func (k *K) ElemAddr(m Mat, i, j uint32) {
	f := k.F
	f.LocalGet(i).I32Const(m.Cols).Op(wasm.OpI32Mul)
	f.LocalGet(j).Op(wasm.OpI32Add)
	f.I32Const(8).Op(wasm.OpI32Mul)
	f.I32Const(m.Base).Op(wasm.OpI32Add)
}

// LoadEl pushes m[i][j].
func (k *K) LoadEl(m Mat, i, j uint32) {
	k.ElemAddr(m, i, j)
	k.F.Load(wasm.OpF64Load, 0)
}

// StoreEl stores the f64 on top of the stack to m[i][j]. The value must
// be pushed by val after the address.
func (k *K) StoreEl(m Mat, i, j uint32, val func()) {
	k.ElemAddr(m, i, j)
	val()
	k.F.Store(wasm.OpF64Store, 0)
}

// VecAddr pushes the byte address of v[i] for an f64 vector at base.
func (k *K) VecAddr(base int32, i uint32) {
	f := k.F
	f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul)
	f.I32Const(base).Op(wasm.OpI32Add)
}

// LoadVec pushes v[i].
func (k *K) LoadVec(base int32, i uint32) {
	k.VecAddr(base, i)
	k.F.Load(wasm.OpF64Load, 0)
}

// StoreVec stores val() to v[i].
func (k *K) StoreVec(base int32, i uint32, val func()) {
	k.VecAddr(base, i)
	val()
	k.F.Store(wasm.OpF64Store, 0)
}

// InitMat fills m (rows x m.Cols) with deterministic data derived from
// the indices, using locals i and j.
func (k *K) InitMat(m Mat, rows int32, i, j uint32) {
	f := k.F
	k.ForI32(i, 0, rows, func() {
		k.ForI32(j, 0, m.Cols, func() {
			k.StoreEl(m, i, j, func() {
				// (i*7 + j*13) % 97 / 97.0 + 0.5
				f.LocalGet(i).I32Const(7).Op(wasm.OpI32Mul)
				f.LocalGet(j).I32Const(13).Op(wasm.OpI32Mul)
				f.Op(wasm.OpI32Add)
				f.I32Const(97).Op(wasm.OpI32RemS)
				f.Op(wasm.OpF64ConvertI32S)
				f.F64Const(1.0 / 97.0).Op(wasm.OpF64Mul)
				f.F64Const(0.5).Op(wasm.OpF64Add)
			})
		})
	})
}

// InitVec fills an f64 vector of n elements at base.
func (k *K) InitVec(base int32, n int32, i uint32) {
	f := k.F
	k.ForI32(i, 0, n, func() {
		k.StoreVec(base, i, func() {
			f.LocalGet(i).I32Const(11).Op(wasm.OpI32Mul)
			f.I32Const(53).Op(wasm.OpI32RemS)
			f.Op(wasm.OpF64ConvertI32S)
			f.F64Const(1.0 / 53.0).Op(wasm.OpF64Mul)
			f.F64Const(0.25).Op(wasm.OpF64Add)
		})
	})
}

// ChecksumMat folds every element of m into the checksum.
func (k *K) ChecksumMat(m Mat, rows int32, i, j uint32) {
	k.ForI32(i, 0, rows, func() {
		k.ForI32(j, 0, m.Cols, func() {
			k.LoadEl(m, i, j)
			k.MixF64()
		})
	})
}

// ChecksumVec folds v[0..n) into the checksum.
func (k *K) ChecksumVec(base, n int32, i uint32) {
	k.ForI32(i, 0, n, func() {
		k.LoadVec(base, i)
		k.MixF64()
	})
}

// ChecksumMem folds n bytes at base into the checksum as i64 words.
func (k *K) ChecksumMem(base, n int32, i uint32) {
	f := k.F
	k.ForI32(i, 0, n/8, func() {
		f.LocalGet(i).I32Const(8).Op(wasm.OpI32Mul)
		f.I32Const(base).Op(wasm.OpI32Add)
		f.Load(wasm.OpI64Load, 0)
		k.Mix()
	})
}

// Names collects the line-item names of a suite, for table rendering.
func Names(items []Item) []string {
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = fmt.Sprintf("%s/%s", it.Suite, it.Name)
	}
	return names
}
