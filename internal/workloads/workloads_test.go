package workloads_test

import (
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

func TestSuiteSizes(t *testing.T) {
	if n := len(workloads.PolyBench()); n != 28 {
		t.Errorf("polybench has %d items, want 28", n)
	}
	if n := len(workloads.Libsodium()); n != 39 {
		t.Errorf("libsodium has %d items, want 39", n)
	}
	if n := len(workloads.Ostrich()); n != 11 {
		t.Errorf("ostrich has %d items, want 11", n)
	}
	if n := len(workloads.All()); n != 78 {
		t.Errorf("total %d items, want 78", n)
	}
}

func TestAllItemsValidate(t *testing.T) {
	for _, it := range workloads.All() {
		for variant, bytes := range map[string][]byte{"full": it.Bytes, "m0": it.BytesM0} {
			m, err := wasm.Decode(bytes)
			if err != nil {
				t.Fatalf("%s/%s (%s): decode: %v", it.Suite, it.Name, variant, err)
			}
			if _, err := validate.Module(m); err != nil {
				t.Fatalf("%s/%s (%s): validate: %v", it.Suite, it.Name, variant, err)
			}
		}
	}
}

func TestMnopValidates(t *testing.T) {
	m, err := wasm.Decode(workloads.Mnop())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := validate.Module(m); err != nil {
		t.Fatal(err)
	}
	if m.Size == 0 {
		t.Fatal("Mnop has zero size")
	}
}

// run executes an item under one configuration and returns its checksum.
func run(t *testing.T, cfg engine.Config, bytes []byte) int64 {
	t.Helper()
	inst, err := engine.New(cfg, nil).Instantiate(bytes)
	if err != nil {
		t.Fatalf("%s: instantiate: %v", cfg.Name, err)
	}
	if _, err := inst.Call("_start"); err != nil {
		t.Fatalf("%s: _start: %v", cfg.Name, err)
	}
	sum, err := inst.Call("checksum")
	if err != nil {
		t.Fatalf("%s: checksum: %v", cfg.Name, err)
	}
	return sum[0].I64()
}

// TestChecksumsAgreeAcrossTiers runs every line item under the
// interpreter and four structurally different compilers and requires
// identical checksums — the strongest end-to-end differential test in
// the repository.
func TestChecksumsAgreeAcrossTiers(t *testing.T) {
	if testing.Short() {
		t.Skip("differential suite run is slow")
	}
	cfgs := []engine.Config{
		engines.WizardINT(),
		engines.WizardSPC(),
		engines.WasmNowLike(),
		engines.Wasm3Like(),
		engines.TurboFanLike(),
	}
	for _, it := range workloads.All() {
		want := run(t, cfgs[0], it.Bytes)
		if want == 0 {
			t.Errorf("%s/%s: zero checksum (vacuous workload?)", it.Suite, it.Name)
		}
		for _, cfg := range cfgs[1:] {
			got := run(t, cfg, it.Bytes)
			if got != want {
				t.Errorf("%s/%s: %s checksum %#x, interpreter %#x",
					it.Suite, it.Name, cfg.Name, got, want)
			}
		}
		// m0 must be cheap and leave checksum zero.
		if m0 := run(t, cfgs[0], it.BytesM0); m0 != 0 {
			t.Errorf("%s/%s: m0 computed %#x, want 0", it.Suite, it.Name, m0)
		}
	}
}
