package workloads

import "wizgo/internal/wasm"

// PolyBench returns the 28 numerical line items mirroring PolyBenchC:
// dense f64 loop nests over linear memory. Problem sizes are scaled so a
// line item runs in roughly a millisecond under the interpreter,
// matching the paper's use of the suite as a code-quality (not
// throughput) benchmark.
func PolyBench() []Item {
	const n = 28 // problem dimension for square kernels
	items := []Item{
		gen(SuitePolyBench, "gemm", func(k *K) { pbGemm(k, n) }),
		gen(SuitePolyBench, "2mm", func(k *K) { pb2mm(k, n) }),
		gen(SuitePolyBench, "3mm", func(k *K) { pb3mm(k, n) }),
		gen(SuitePolyBench, "atax", func(k *K) { pbAtax(k, 48) }),
		gen(SuitePolyBench, "bicg", func(k *K) { pbBicg(k, 48) }),
		gen(SuitePolyBench, "mvt", func(k *K) { pbMvt(k, 48) }),
		gen(SuitePolyBench, "gemver", func(k *K) { pbGemver(k, 44) }),
		gen(SuitePolyBench, "gesummv", func(k *K) { pbGesummv(k, 48) }),
		gen(SuitePolyBench, "symm", func(k *K) { pbSymm(k, n) }),
		gen(SuitePolyBench, "syrk", func(k *K) { pbSyrk(k, n) }),
		gen(SuitePolyBench, "syr2k", func(k *K) { pbSyr2k(k, n) }),
		gen(SuitePolyBench, "trmm", func(k *K) { pbTrmm(k, n) }),
		gen(SuitePolyBench, "cholesky", func(k *K) { pbCholesky(k, 36) }),
		gen(SuitePolyBench, "durbin", func(k *K) { pbDurbin(k, 72) }),
		gen(SuitePolyBench, "gramschmidt", func(k *K) { pbGramschmidt(k, n) }),
		gen(SuitePolyBench, "lu", func(k *K) { pbLU(k, 36) }),
		gen(SuitePolyBench, "ludcmp", func(k *K) { pbLudcmp(k, 36) }),
		gen(SuitePolyBench, "trisolv", func(k *K) { pbTrisolv(k, 96) }),
		gen(SuitePolyBench, "correlation", func(k *K) { pbCorrelation(k, n) }),
		gen(SuitePolyBench, "covariance", func(k *K) { pbCovariance(k, n) }),
		gen(SuitePolyBench, "floyd-warshall", func(k *K) { pbFloyd(k, 30) }),
		gen(SuitePolyBench, "nussinov", func(k *K) { pbNussinov(k, 44) }),
		gen(SuitePolyBench, "doitgen", func(k *K) { pbDoitgen(k, 14) }),
		gen(SuitePolyBench, "jacobi-1d", func(k *K) { pbJacobi1D(k, 512, 40) }),
		gen(SuitePolyBench, "jacobi-2d", func(k *K) { pbJacobi2D(k, 26, 12) }),
		gen(SuitePolyBench, "seidel-2d", func(k *K) { pbSeidel2D(k, 26, 10) }),
		gen(SuitePolyBench, "fdtd-2d", func(k *K) { pbFdtd2D(k, 24, 10) }),
		gen(SuitePolyBench, "heat-3d", func(k *K) { pbHeat3D(k, 12, 10) }),
	}
	return items
}

// Matrix bases in the 1 MiB memory (each region 64 KiB apart).
const (
	mA = 0x00000
	mB = 0x10000
	mC = 0x20000
	mD = 0x30000
	mE = 0x40000
	vX = 0x50000
	vY = 0x58000
	vZ = 0x60000
	vW = 0x68000
)

// pbGemm: C = alpha*A*B + beta*C.
func pbGemm(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A, B, C := Mat{mA, n}, Mat{mB, n}, Mat{mC, n}
	k.InitMat(A, n, i, j)
	k.InitMat(B, n, i, j)
	k.InitMat(C, n, i, j)
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32(l, 0, n, func() {
				k.LoadEl(A, i, l)
				k.LoadEl(B, l, j)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreEl(C, i, j, func() {
				f.LocalGet(acc).F64Const(1.5).Op(wasm.OpF64Mul)
				k.LoadEl(C, i, j)
				f.F64Const(1.2).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	k.ChecksumMat(C, n, i, j)
}

func matmul(k *K, dst, a, b Mat, n int32, i, j, l, acc uint32) {
	f := k.F
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32(l, 0, n, func() {
				k.LoadEl(a, i, l)
				k.LoadEl(b, l, j)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreEl(dst, i, j, func() { f.LocalGet(acc) })
		})
	})
}

// pb2mm: E = (A*B)*C.
func pb2mm(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A, B, C, D := Mat{mA, n}, Mat{mB, n}, Mat{mC, n}, Mat{mD, n}
	k.InitMat(A, n, i, j)
	k.InitMat(B, n, i, j)
	k.InitMat(C, n, i, j)
	matmul(k, D, A, B, n, i, j, l, acc)
	E := Mat{mE, n}
	matmul(k, E, D, C, n, i, j, l, acc)
	k.ChecksumMat(E, n, i, j)
}

// pb3mm: G = (A*B)*(C*D).
func pb3mm(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A, B, C, D := Mat{mA, n}, Mat{mB, n}, Mat{mC, n}, Mat{mD, n}
	k.InitMat(A, n, i, j)
	k.InitMat(B, n, i, j)
	k.InitMat(C, n, i, j)
	k.InitMat(D, n, i, j)
	E, F2, G := Mat{mE, n}, Mat{vX, n}, Mat{vZ, n}
	matmul(k, E, A, B, n, i, j, l, acc)
	matmul(k, F2, C, D, n, i, j, l, acc)
	matmul(k, G, E, F2, n, i, j, l, acc)
	k.ChecksumMat(G, n, i, j)
}

// pbAtax: y = A^T (A x).
func pbAtax(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	k.InitVec(vX, n, i)
	// tmp = A*x
	k.ForI32(i, 0, n, func() {
		f.F64Const(0).LocalSet(acc)
		k.ForI32(j, 0, n, func() {
			k.LoadEl(A, i, j)
			k.LoadVec(vX, j)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
		})
		k.StoreVec(vY, i, func() { f.LocalGet(acc) })
	})
	// y = A^T * tmp
	k.ForI32(j, 0, n, func() {
		f.F64Const(0).LocalSet(acc)
		k.ForI32(i, 0, n, func() {
			k.LoadEl(A, i, j)
			k.LoadVec(vY, i)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
		})
		k.StoreVec(vZ, j, func() { f.LocalGet(acc) })
	})
	k.ChecksumVec(vZ, n, i)
}

// pbBicg: q = A p, s = A^T r.
func pbBicg(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	k.InitVec(vX, n, i) // p
	k.InitVec(vY, n, i) // r
	k.ForI32(i, 0, n, func() {
		f.F64Const(0).LocalSet(acc)
		k.ForI32(j, 0, n, func() {
			k.LoadEl(A, i, j)
			k.LoadVec(vX, j)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
		})
		k.StoreVec(vZ, i, func() { f.LocalGet(acc) })
	})
	k.ForI32(j, 0, n, func() {
		f.F64Const(0).LocalSet(acc)
		k.ForI32(i, 0, n, func() {
			k.LoadEl(A, i, j)
			k.LoadVec(vY, i)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
		})
		k.StoreVec(vW, j, func() { f.LocalGet(acc) })
	})
	k.ChecksumVec(vZ, n, i)
	k.ChecksumVec(vW, n, i)
}

// pbMvt: x1 += A y1; x2 += A^T y2.
func pbMvt(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	k.InitVec(vX, n, i)
	k.InitVec(vY, n, i)
	k.InitVec(vZ, n, i)
	k.InitVec(vW, n, i)
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			k.StoreVec(vX, i, func() {
				k.LoadVec(vX, i)
				k.LoadEl(A, i, j)
				k.LoadVec(vZ, j)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			k.StoreVec(vY, i, func() {
				k.LoadVec(vY, i)
				k.LoadEl(A, j, i)
				k.LoadVec(vW, j)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	k.ChecksumVec(vX, n, i)
	k.ChecksumVec(vY, n, i)
}

// pbGemver: multiple matrix-vector products with rank-2 update.
func pbGemver(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	k.InitVec(vX, n, i) // u1
	k.InitVec(vY, n, i) // v1
	k.InitVec(vZ, n, i) // y
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			k.StoreEl(A, i, j, func() {
				k.LoadEl(A, i, j)
				k.LoadVec(vX, i)
				k.LoadVec(vY, j)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	// x = beta * A^T y
	k.ForI32(i, 0, n, func() {
		k.StoreVec(vW, i, func() { f.F64Const(0) })
		k.ForI32(j, 0, n, func() {
			k.StoreVec(vW, i, func() {
				k.LoadVec(vW, i)
				k.LoadEl(A, j, i)
				k.LoadVec(vZ, j)
				f.Op(wasm.OpF64Mul)
				f.F64Const(1.2).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	// w = alpha * A x
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			k.StoreVec(vX, i, func() {
				k.LoadVec(vX, i)
				k.LoadEl(A, i, j)
				k.LoadVec(vW, j)
				f.Op(wasm.OpF64Mul)
				f.F64Const(1.5).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	k.ChecksumVec(vX, n, i)
}

// pbGesummv: y = alpha*A*x + beta*B*x.
func pbGesummv(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	t1, t2 := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	A, B := Mat{mA, n}, Mat{mB, n}
	k.InitMat(A, n, i, j)
	k.InitMat(B, n, i, j)
	k.InitVec(vX, n, i)
	k.ForI32(i, 0, n, func() {
		f.F64Const(0).LocalSet(t1)
		f.F64Const(0).LocalSet(t2)
		k.ForI32(j, 0, n, func() {
			k.LoadEl(A, i, j)
			k.LoadVec(vX, j)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(t1).Op(wasm.OpF64Add).LocalSet(t1)
			k.LoadEl(B, i, j)
			k.LoadVec(vX, j)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(t2).Op(wasm.OpF64Add).LocalSet(t2)
		})
		k.StoreVec(vY, i, func() {
			f.LocalGet(t1).F64Const(1.5).Op(wasm.OpF64Mul)
			f.LocalGet(t2).F64Const(1.2).Op(wasm.OpF64Mul)
			f.Op(wasm.OpF64Add)
		})
	})
	k.ChecksumVec(vY, n, i)
}

// pbSymm: C = alpha*A*B + beta*C with A symmetric (simplified triangular
// access pattern).
func pbSymm(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A, B, C := Mat{mA, n}, Mat{mB, n}, Mat{mC, n}
	k.InitMat(A, n, i, j)
	k.InitMat(B, n, i, j)
	k.InitMat(C, n, i, j)
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32N(l, i, func() {
				k.LoadEl(A, i, l)
				k.LoadEl(B, l, j)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreEl(C, i, j, func() {
				k.LoadEl(C, i, j)
				f.F64Const(1.2).Op(wasm.OpF64Mul)
				f.LocalGet(acc).F64Const(1.5).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
				k.LoadEl(B, i, j)
				k.LoadEl(A, i, i)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	k.ChecksumMat(C, n, i, j)
}

// pbSyrk: C = alpha*A*A^T + beta*C.
func pbSyrk(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A, C := Mat{mA, n}, Mat{mC, n}
	k.InitMat(A, n, i, j)
	k.InitMat(C, n, i, j)
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32(l, 0, n, func() {
				k.LoadEl(A, i, l)
				k.LoadEl(A, j, l)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreEl(C, i, j, func() {
				k.LoadEl(C, i, j)
				f.F64Const(1.2).Op(wasm.OpF64Mul)
				f.LocalGet(acc).F64Const(1.5).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	k.ChecksumMat(C, n, i, j)
}

// pbSyr2k: C = alpha*(A*B^T + B*A^T) + beta*C.
func pbSyr2k(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	A, B, C := Mat{mA, n}, Mat{mB, n}, Mat{mC, n}
	k.InitMat(A, n, i, j)
	k.InitMat(B, n, i, j)
	k.InitMat(C, n, i, j)
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32(l, 0, n, func() {
				k.LoadEl(A, i, l)
				k.LoadEl(B, j, l)
				f.Op(wasm.OpF64Mul)
				k.LoadEl(B, i, l)
				k.LoadEl(A, j, l)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreEl(C, i, j, func() {
				k.LoadEl(C, i, j)
				f.F64Const(1.2).Op(wasm.OpF64Mul)
				f.LocalGet(acc).F64Const(1.5).Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Add)
			})
		})
	})
	k.ChecksumMat(C, n, i, j)
}

// pbTrmm: B = alpha*A*B with A lower-triangular.
func pbTrmm(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	A, B := Mat{mA, n}, Mat{mB, n}
	k.InitMat(A, n, i, j)
	k.InitMat(B, n, i, j)
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			k.ForI32N(l, i, func() {
				k.StoreEl(B, i, j, func() {
					k.LoadEl(B, i, j)
					k.LoadEl(A, i, l)
					k.LoadEl(B, l, j)
					f.Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Add)
				})
			})
		})
	})
	k.ChecksumMat(B, n, i, j)
}

// pbCholesky: in-place Cholesky factorization of a diagonally dominant
// matrix.
func pbCholesky(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	// Make diagonally dominant: A[i][i] += n.
	k.ForI32(i, 0, n, func() {
		k.StoreEl(A, i, i, func() {
			k.LoadEl(A, i, i)
			f.F64Const(float64(n)).Op(wasm.OpF64Add)
		})
	})
	k.ForI32(i, 0, n, func() {
		k.ForI32N(j, i, func() {
			k.ForI32N(l, j, func() {
				k.StoreEl(A, i, j, func() {
					k.LoadEl(A, i, j)
					k.LoadEl(A, i, l)
					k.LoadEl(A, j, l)
					f.Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub)
				})
			})
			k.StoreEl(A, i, j, func() {
				k.LoadEl(A, i, j)
				k.LoadEl(A, j, j)
				f.Op(wasm.OpF64Div)
			})
		})
		k.ForI32N(l, i, func() {
			k.StoreEl(A, i, i, func() {
				k.LoadEl(A, i, i)
				k.LoadEl(A, i, l)
				k.LoadEl(A, i, l)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Sub)
			})
		})
		k.StoreEl(A, i, i, func() {
			k.LoadEl(A, i, i)
			f.Op(wasm.OpF64Sqrt)
		})
	})
	k.ChecksumMat(A, n, i, j)
}

// pbDurbin: Levinson-Durbin recursion (simplified inner structure).
func pbDurbin(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	alpha, beta, sum := f.AddLocal(wasm.F64), f.AddLocal(wasm.F64), f.AddLocal(wasm.F64)
	k.InitVec(vX, n, i) // r
	f.F64Const(1).LocalSet(beta)
	f.I32Const(0).LocalSet(i)
	k.LoadVec(vX, i)
	f.Op(wasm.OpF64Neg).LocalSet(alpha)
	k.StoreVec(vY, i, func() { f.LocalGet(alpha) })
	k.ForI32(i, 1, n, func() {
		// beta = (1 - alpha^2) * beta
		f.F64Const(1)
		f.LocalGet(alpha).LocalGet(alpha).Op(wasm.OpF64Mul)
		f.Op(wasm.OpF64Sub)
		f.LocalGet(beta).Op(wasm.OpF64Mul).LocalSet(beta)
		// sum = r[i] + sum_j r[i-j-1]*y[j]
		f.F64Const(0).LocalSet(sum)
		k.ForI32N(j, i, func() {
			f.LocalGet(i).LocalGet(j).Op(wasm.OpI32Sub).I32Const(1).Op(wasm.OpI32Sub)
			f.I32Const(8).Op(wasm.OpI32Mul).I32Const(vX).Op(wasm.OpI32Add)
			f.Load(wasm.OpF64Load, 0)
			k.LoadVec(vY, j)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(sum).Op(wasm.OpF64Add).LocalSet(sum)
		})
		k.LoadVec(vX, i)
		f.LocalGet(sum).Op(wasm.OpF64Add)
		f.Op(wasm.OpF64Neg)
		f.LocalGet(beta).Op(wasm.OpF64Div)
		f.LocalSet(alpha)
		k.StoreVec(vY, i, func() { f.LocalGet(alpha) })
	})
	k.ChecksumVec(vY, n, i)
}

// pbGramschmidt: QR decomposition by modified Gram-Schmidt.
func pbGramschmidt(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	nrm := f.AddLocal(wasm.F64)
	A, R, Q := Mat{mA, n}, Mat{mB, n}, Mat{mC, n}
	k.InitMat(A, n, i, j)
	k.ForI32(l, 0, n, func() {
		f.F64Const(0).LocalSet(nrm)
		k.ForI32(i, 0, n, func() {
			k.LoadEl(A, i, l)
			k.LoadEl(A, i, l)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(nrm).Op(wasm.OpF64Add).LocalSet(nrm)
		})
		k.StoreEl(R, l, l, func() { f.LocalGet(nrm).Op(wasm.OpF64Sqrt) })
		k.ForI32(i, 0, n, func() {
			k.StoreEl(Q, i, l, func() {
				k.LoadEl(A, i, l)
				k.LoadEl(R, l, l)
				f.Op(wasm.OpF64Div)
			})
		})
		k.ForI32(j, 0, n, func() {
			f.LocalGet(j).LocalGet(l).Op(wasm.OpI32GtS)
			f.If(wasm.BlockEmpty)
			f.F64Const(0).LocalSet(nrm)
			k.ForI32(i, 0, n, func() {
				k.LoadEl(Q, i, l)
				k.LoadEl(A, i, j)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(nrm).Op(wasm.OpF64Add).LocalSet(nrm)
			})
			k.StoreEl(R, l, j, func() { f.LocalGet(nrm) })
			k.ForI32(i, 0, n, func() {
				k.StoreEl(A, i, j, func() {
					k.LoadEl(A, i, j)
					k.LoadEl(Q, i, l)
					k.LoadEl(R, l, j)
					f.Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub)
				})
			})
			f.End()
		})
	})
	k.ChecksumMat(Q, n, i, j)
}

// pbLU: in-place LU decomposition.
func pbLU(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	k.ForI32(i, 0, n, func() {
		k.StoreEl(A, i, i, func() {
			k.LoadEl(A, i, i)
			f.F64Const(float64(n)).Op(wasm.OpF64Add)
		})
	})
	k.ForI32(i, 0, n, func() {
		k.ForI32N(j, i, func() {
			k.ForI32N(l, j, func() {
				k.StoreEl(A, i, j, func() {
					k.LoadEl(A, i, j)
					k.LoadEl(A, i, l)
					k.LoadEl(A, l, j)
					f.Op(wasm.OpF64Mul)
					f.Op(wasm.OpF64Sub)
				})
			})
			k.StoreEl(A, i, j, func() {
				k.LoadEl(A, i, j)
				k.LoadEl(A, j, j)
				f.Op(wasm.OpF64Div)
			})
		})
		// j from i to n.
		f.LocalGet(i).LocalSet(j)
		f.Block(wasm.BlockEmpty)
		f.LocalGet(j).I32Const(n).Op(wasm.OpI32GeS).BrIf(0)
		f.Loop(wasm.BlockEmpty)
		k.ForI32N(l, i, func() {
			k.StoreEl(A, i, j, func() {
				k.LoadEl(A, i, j)
				k.LoadEl(A, i, l)
				k.LoadEl(A, l, j)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Sub)
			})
		})
		f.LocalGet(j).I32Const(1).Op(wasm.OpI32Add).LocalTee(j)
		f.I32Const(n).Op(wasm.OpI32LtS).BrIf(0)
		f.End()
		f.End()
	})
	k.ChecksumMat(A, n, i, j)
}

// pbLudcmp: LU + forward/back substitution.
func pbLudcmp(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	pbLU(k, n)
	A := Mat{mA, n}
	k.InitVec(vX, n, i) // b
	// Forward substitution: y = L\b.
	k.ForI32(i, 0, n, func() {
		k.LoadVec(vX, i)
		f.LocalSet(acc)
		k.ForI32N(j, i, func() {
			k.LoadEl(A, i, j)
			k.LoadVec(vY, j)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(acc)
			f.Op(wasm.OpF64Sub).Op(wasm.OpF64Neg)
			f.LocalSet(acc)
		})
		k.StoreVec(vY, i, func() { f.LocalGet(acc) })
	})
	k.ChecksumVec(vY, n, i)
}

// pbTrisolv: triangular solver.
func pbTrisolv(k *K, n int32) {
	f := k.F
	i, j := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	t := f.AddLocal(wasm.F64)
	A := Mat{mA, n}
	k.InitMat(A, n, i, j)
	k.InitVec(vX, n, i)
	k.ForI32(i, 0, n, func() {
		k.LoadVec(vX, i)
		f.LocalSet(t)
		k.ForI32N(j, i, func() {
			f.LocalGet(t)
			k.LoadEl(A, i, j)
			k.LoadVec(vY, j)
			f.Op(wasm.OpF64Mul)
			f.Op(wasm.OpF64Sub)
			f.LocalSet(t)
		})
		k.StoreVec(vY, i, func() {
			f.LocalGet(t)
			k.LoadEl(A, i, i)
			f.F64Const(1).Op(wasm.OpF64Add)
			f.Op(wasm.OpF64Div)
		})
	})
	k.ChecksumVec(vY, n, i)
}

// pbCorrelation: correlation matrix of a data matrix.
func pbCorrelation(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	D, C := Mat{mA, n}, Mat{mC, n}
	k.InitMat(D, n, i, j)
	// mean[j] -> vX; stddev-ish norm -> vY
	k.ForI32(j, 0, n, func() {
		f.F64Const(0).LocalSet(acc)
		k.ForI32(i, 0, n, func() {
			k.LoadEl(D, i, j)
			f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
		})
		k.StoreVec(vX, j, func() {
			f.LocalGet(acc).F64Const(float64(n)).Op(wasm.OpF64Div)
		})
	})
	k.ForI32(j, 0, n, func() {
		f.F64Const(0).LocalSet(acc)
		k.ForI32(i, 0, n, func() {
			k.LoadEl(D, i, j)
			k.LoadVec(vX, j)
			f.Op(wasm.OpF64Sub)
			k.LoadEl(D, i, j)
			k.LoadVec(vX, j)
			f.Op(wasm.OpF64Sub)
			f.Op(wasm.OpF64Mul)
			f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
		})
		k.StoreVec(vY, j, func() {
			f.LocalGet(acc).Op(wasm.OpF64Sqrt)
			f.F64Const(1e-9).Op(wasm.OpF64Add)
		})
	})
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32(l, 0, n, func() {
				k.LoadEl(D, l, i)
				k.LoadVec(vX, i)
				f.Op(wasm.OpF64Sub)
				k.LoadEl(D, l, j)
				k.LoadVec(vX, j)
				f.Op(wasm.OpF64Sub)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreEl(C, i, j, func() {
				f.LocalGet(acc)
				k.LoadVec(vY, i)
				k.LoadVec(vY, j)
				f.Op(wasm.OpF64Mul)
				f.Op(wasm.OpF64Div)
			})
		})
	})
	k.ChecksumMat(C, n, i, j)
}

// pbCovariance: covariance matrix.
func pbCovariance(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.F64)
	D, C := Mat{mA, n}, Mat{mC, n}
	k.InitMat(D, n, i, j)
	k.ForI32(j, 0, n, func() {
		f.F64Const(0).LocalSet(acc)
		k.ForI32(i, 0, n, func() {
			k.LoadEl(D, i, j)
			f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
		})
		k.StoreVec(vX, j, func() {
			f.LocalGet(acc).F64Const(float64(n)).Op(wasm.OpF64Div)
		})
	})
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			f.F64Const(0).LocalSet(acc)
			k.ForI32(l, 0, n, func() {
				k.LoadEl(D, l, i)
				k.LoadVec(vX, i)
				f.Op(wasm.OpF64Sub)
				k.LoadEl(D, l, j)
				k.LoadVec(vX, j)
				f.Op(wasm.OpF64Sub)
				f.Op(wasm.OpF64Mul)
				f.LocalGet(acc).Op(wasm.OpF64Add).LocalSet(acc)
			})
			k.StoreEl(C, i, j, func() {
				f.LocalGet(acc).F64Const(float64(n - 1)).Op(wasm.OpF64Div)
			})
		})
	})
	k.ChecksumMat(C, n, i, j)
}

// pbFloyd: Floyd-Warshall all-pairs shortest paths over i32 weights.
func pbFloyd(k *K, n int32) {
	f := k.F
	i, j, l := f.AddLocal(wasm.I32), f.AddLocal(wasm.I32), f.AddLocal(wasm.I32)
	tmp := f.AddLocal(wasm.I32)
	// i32 path matrix at mA, row-major, 4-byte elements.
	addr := func(r, c uint32) {
		f.LocalGet(r).I32Const(n).Op(wasm.OpI32Mul)
		f.LocalGet(c).Op(wasm.OpI32Add)
		f.I32Const(4).Op(wasm.OpI32Mul)
	}
	k.ForI32(i, 0, n, func() {
		k.ForI32(j, 0, n, func() {
			addr(i, j)
			f.LocalGet(i).I32Const(13).Op(wasm.OpI32Mul)
			f.LocalGet(j).I32Const(7).Op(wasm.OpI32Mul)
			f.Op(wasm.OpI32Add)
			f.I32Const(99).Op(wasm.OpI32RemS)
			f.I32Const(1).Op(wasm.OpI32Add)
			f.Store(wasm.OpI32Store, 0)
		})
	})
	k.ForI32(l, 0, n, func() {
		k.ForI32(i, 0, n, func() {
			k.ForI32(j, 0, n, func() {
				// tmp = p[i][l] + p[l][j]
				addr(i, l)
				f.Load(wasm.OpI32Load, 0)
				addr(l, j)
				f.Load(wasm.OpI32Load, 0)
				f.Op(wasm.OpI32Add)
				f.LocalSet(tmp)
				// if tmp < p[i][j] { p[i][j] = tmp }
				f.LocalGet(tmp)
				addr(i, j)
				f.Load(wasm.OpI32Load, 0)
				f.Op(wasm.OpI32LtS)
				f.If(wasm.BlockEmpty)
				addr(i, j)
				f.LocalGet(tmp)
				f.Store(wasm.OpI32Store, 0)
				f.End()
			})
		})
	})
	k.ChecksumMem(mA, n*n*4, i)
}
