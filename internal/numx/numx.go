// Package numx centralizes the scalar semantics of Wasm numeric
// instructions over raw 64-bit slot values. It has four clients with
// identical correctness requirements: the in-place interpreter, the
// MachCode executor's generic fallback, and the constant folders of the
// single-pass and optimizing compilers (folding must agree bit-for-bit
// with execution, or constant tracking would change program behaviour).
package numx

import (
	"math"
	"math/bits"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// B2u converts a bool to 0/1.
func B2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Float min/max with Wasm NaN and signed-zero semantics.

// FMin32 is f32.min.
func FMin32(a, b float32) float32 {
	if a != a || b != b {
		return float32(math.NaN())
	}
	return float32(math.Min(float64(a), float64(b)))
}

// FMax32 is f32.max.
func FMax32(a, b float32) float32 {
	if a != a || b != b {
		return float32(math.NaN())
	}
	return float32(math.Max(float64(a), float64(b)))
}

// FMin64 is f64.min.
func FMin64(a, b float64) float64 {
	if a != a || b != b {
		return math.NaN()
	}
	return math.Min(a, b)
}

// FMax64 is f64.max.
func FMax64(a, b float64) float64 {
	if a != a || b != b {
		return math.NaN()
	}
	return math.Max(a, b)
}

// Trapping float→int truncations.

// TruncToI32S implements i32.trunc_f*_s range checking.
func TruncToI32S(x float64) (int32, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < -2147483648 || x > 2147483647 {
		return 0, rt.TrapIntOverflow
	}
	return int32(x), rt.TrapNone
}

// TruncToI32U implements i32.trunc_f*_u range checking.
func TruncToI32U(x float64) (uint32, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < 0 || x > 4294967295 {
		return 0, rt.TrapIntOverflow
	}
	return uint32(x), rt.TrapNone
}

// TruncToI64S implements i64.trunc_f*_s range checking.
func TruncToI64S(x float64) (int64, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < -9223372036854775808 || x >= 9223372036854775808 {
		return 0, rt.TrapIntOverflow
	}
	return int64(x), rt.TrapNone
}

// TruncToI64U implements i64.trunc_f*_u range checking.
func TruncToI64U(x float64) (uint64, rt.TrapKind) {
	if x != x {
		return 0, rt.TrapInvalidConversion
	}
	x = math.Trunc(x)
	if x < 0 || x >= 18446744073709551616 {
		return 0, rt.TrapIntOverflow
	}
	return uint64(x), rt.TrapNone
}

// Saturating float→int truncations.

// SatToI32S implements i32.trunc_sat_f*_s.
func SatToI32S(x float64) int32 {
	if x != x {
		return 0
	}
	x = math.Trunc(x)
	if x < -2147483648 {
		return math.MinInt32
	}
	if x > 2147483647 {
		return math.MaxInt32
	}
	return int32(x)
}

// SatToI32U implements i32.trunc_sat_f*_u.
func SatToI32U(x float64) uint32 {
	if x != x || x < 0 {
		return 0
	}
	x = math.Trunc(x)
	if x > 4294967295 {
		return math.MaxUint32
	}
	return uint32(x)
}

// SatToI64S implements i64.trunc_sat_f*_s.
func SatToI64S(x float64) int64 {
	if x != x {
		return 0
	}
	x = math.Trunc(x)
	if x < -9223372036854775808 {
		return math.MinInt64
	}
	if x >= 9223372036854775808 {
		return math.MaxInt64
	}
	return int64(x)
}

// SatToI64U implements i64.trunc_sat_f*_u.
func SatToI64U(x float64) uint64 {
	if x != x || x < 0 {
		return 0
	}
	x = math.Trunc(x)
	if x >= 18446744073709551616 {
		return math.MaxUint64
	}
	return uint64(x)
}

func f32(bits64 uint64) float32  { return math.Float32frombits(uint32(bits64)) }
func f64v(bits64 uint64) float64 { return math.Float64frombits(bits64) }
func rf32(v float32) uint64      { return uint64(math.Float32bits(v)) }
func rf64(v float64) uint64      { return math.Float64bits(v) }

// EvalUn evaluates a unary numeric Wasm instruction on raw bits.
// ok=false means the opcode is not a unary numeric op.
func EvalUn(op wasm.Opcode, x uint64) (r uint64, trap rt.TrapKind, ok bool) {
	switch op {
	case wasm.OpI32Eqz:
		return B2u(uint32(x) == 0), rt.TrapNone, true
	case wasm.OpI64Eqz:
		return B2u(x == 0), rt.TrapNone, true
	case wasm.OpI32Clz:
		return uint64(uint32(bits.LeadingZeros32(uint32(x)))), rt.TrapNone, true
	case wasm.OpI32Ctz:
		return uint64(uint32(bits.TrailingZeros32(uint32(x)))), rt.TrapNone, true
	case wasm.OpI32Popcnt:
		return uint64(uint32(bits.OnesCount32(uint32(x)))), rt.TrapNone, true
	case wasm.OpI64Clz:
		return uint64(bits.LeadingZeros64(x)), rt.TrapNone, true
	case wasm.OpI64Ctz:
		return uint64(bits.TrailingZeros64(x)), rt.TrapNone, true
	case wasm.OpI64Popcnt:
		return uint64(bits.OnesCount64(x)), rt.TrapNone, true
	case wasm.OpF32Abs:
		return x &^ (1 << 31), rt.TrapNone, true
	case wasm.OpF32Neg:
		return x ^ (1 << 31), rt.TrapNone, true
	case wasm.OpF32Ceil:
		return rf32(float32(math.Ceil(float64(f32(x))))), rt.TrapNone, true
	case wasm.OpF32Floor:
		return rf32(float32(math.Floor(float64(f32(x))))), rt.TrapNone, true
	case wasm.OpF32Trunc:
		return rf32(float32(math.Trunc(float64(f32(x))))), rt.TrapNone, true
	case wasm.OpF32Nearest:
		return rf32(float32(math.RoundToEven(float64(f32(x))))), rt.TrapNone, true
	case wasm.OpF32Sqrt:
		return rf32(float32(math.Sqrt(float64(f32(x))))), rt.TrapNone, true
	case wasm.OpF64Abs:
		return x &^ (1 << 63), rt.TrapNone, true
	case wasm.OpF64Neg:
		return x ^ (1 << 63), rt.TrapNone, true
	case wasm.OpF64Ceil:
		return rf64(math.Ceil(f64v(x))), rt.TrapNone, true
	case wasm.OpF64Floor:
		return rf64(math.Floor(f64v(x))), rt.TrapNone, true
	case wasm.OpF64Trunc:
		return rf64(math.Trunc(f64v(x))), rt.TrapNone, true
	case wasm.OpF64Nearest:
		return rf64(math.RoundToEven(f64v(x))), rt.TrapNone, true
	case wasm.OpF64Sqrt:
		return rf64(math.Sqrt(f64v(x))), rt.TrapNone, true
	case wasm.OpI32WrapI64:
		return uint64(uint32(x)), rt.TrapNone, true
	case wasm.OpI32TruncF32S:
		v, k := TruncToI32S(float64(f32(x)))
		return uint64(uint32(v)), k, true
	case wasm.OpI32TruncF32U:
		v, k := TruncToI32U(float64(f32(x)))
		return uint64(v), k, true
	case wasm.OpI32TruncF64S:
		v, k := TruncToI32S(f64v(x))
		return uint64(uint32(v)), k, true
	case wasm.OpI32TruncF64U:
		v, k := TruncToI32U(f64v(x))
		return uint64(v), k, true
	case wasm.OpI64ExtendI32S:
		return uint64(int64(int32(x))), rt.TrapNone, true
	case wasm.OpI64ExtendI32U:
		return uint64(uint32(x)), rt.TrapNone, true
	case wasm.OpI64TruncF32S:
		v, k := TruncToI64S(float64(f32(x)))
		return uint64(v), k, true
	case wasm.OpI64TruncF32U:
		v, k := TruncToI64U(float64(f32(x)))
		return v, k, true
	case wasm.OpI64TruncF64S:
		v, k := TruncToI64S(f64v(x))
		return uint64(v), k, true
	case wasm.OpI64TruncF64U:
		v, k := TruncToI64U(f64v(x))
		return v, k, true
	case wasm.OpF32ConvertI32S:
		return rf32(float32(int32(x))), rt.TrapNone, true
	case wasm.OpF32ConvertI32U:
		return rf32(float32(uint32(x))), rt.TrapNone, true
	case wasm.OpF32ConvertI64S:
		return rf32(float32(int64(x))), rt.TrapNone, true
	case wasm.OpF32ConvertI64U:
		return rf32(float32(x)), rt.TrapNone, true
	case wasm.OpF32DemoteF64:
		return rf32(float32(f64v(x))), rt.TrapNone, true
	case wasm.OpF64ConvertI32S:
		return rf64(float64(int32(x))), rt.TrapNone, true
	case wasm.OpF64ConvertI32U:
		return rf64(float64(uint32(x))), rt.TrapNone, true
	case wasm.OpF64ConvertI64S:
		return rf64(float64(int64(x))), rt.TrapNone, true
	case wasm.OpF64ConvertI64U:
		return rf64(float64(x)), rt.TrapNone, true
	case wasm.OpF64PromoteF32:
		return rf64(float64(f32(x))), rt.TrapNone, true
	case wasm.OpI32ReinterpretF32, wasm.OpI64ReinterpretF64,
		wasm.OpF32ReinterpretI32, wasm.OpF64ReinterpretI64:
		return x, rt.TrapNone, true
	case wasm.OpI32Extend8S:
		return uint64(uint32(int32(int8(x)))), rt.TrapNone, true
	case wasm.OpI32Extend16S:
		return uint64(uint32(int32(int16(x)))), rt.TrapNone, true
	case wasm.OpI64Extend8S:
		return uint64(int64(int8(x))), rt.TrapNone, true
	case wasm.OpI64Extend16S:
		return uint64(int64(int16(x))), rt.TrapNone, true
	case wasm.OpI64Extend32S:
		return uint64(int64(int32(x))), rt.TrapNone, true
	case wasm.OpI32TruncSatF32S:
		return uint64(uint32(SatToI32S(float64(f32(x))))), rt.TrapNone, true
	case wasm.OpI32TruncSatF32U:
		return uint64(SatToI32U(float64(f32(x)))), rt.TrapNone, true
	case wasm.OpI32TruncSatF64S:
		return uint64(uint32(SatToI32S(f64v(x)))), rt.TrapNone, true
	case wasm.OpI32TruncSatF64U:
		return uint64(SatToI32U(f64v(x))), rt.TrapNone, true
	case wasm.OpI64TruncSatF32S:
		return uint64(SatToI64S(float64(f32(x)))), rt.TrapNone, true
	case wasm.OpI64TruncSatF32U:
		return SatToI64U(float64(f32(x))), rt.TrapNone, true
	case wasm.OpI64TruncSatF64S:
		return uint64(SatToI64S(f64v(x))), rt.TrapNone, true
	case wasm.OpI64TruncSatF64U:
		return SatToI64U(f64v(x)), rt.TrapNone, true
	}
	return 0, rt.TrapNone, false
}

// EvalBin evaluates a binary numeric Wasm instruction on raw bits.
// ok=false means the opcode is not a binary numeric op.
func EvalBin(op wasm.Opcode, x, y uint64) (r uint64, trap rt.TrapKind, ok bool) {
	switch op {
	case wasm.OpI32Eq:
		return B2u(uint32(x) == uint32(y)), rt.TrapNone, true
	case wasm.OpI32Ne:
		return B2u(uint32(x) != uint32(y)), rt.TrapNone, true
	case wasm.OpI32LtS:
		return B2u(int32(x) < int32(y)), rt.TrapNone, true
	case wasm.OpI32LtU:
		return B2u(uint32(x) < uint32(y)), rt.TrapNone, true
	case wasm.OpI32GtS:
		return B2u(int32(x) > int32(y)), rt.TrapNone, true
	case wasm.OpI32GtU:
		return B2u(uint32(x) > uint32(y)), rt.TrapNone, true
	case wasm.OpI32LeS:
		return B2u(int32(x) <= int32(y)), rt.TrapNone, true
	case wasm.OpI32LeU:
		return B2u(uint32(x) <= uint32(y)), rt.TrapNone, true
	case wasm.OpI32GeS:
		return B2u(int32(x) >= int32(y)), rt.TrapNone, true
	case wasm.OpI32GeU:
		return B2u(uint32(x) >= uint32(y)), rt.TrapNone, true
	case wasm.OpI64Eq:
		return B2u(x == y), rt.TrapNone, true
	case wasm.OpI64Ne:
		return B2u(x != y), rt.TrapNone, true
	case wasm.OpI64LtS:
		return B2u(int64(x) < int64(y)), rt.TrapNone, true
	case wasm.OpI64LtU:
		return B2u(x < y), rt.TrapNone, true
	case wasm.OpI64GtS:
		return B2u(int64(x) > int64(y)), rt.TrapNone, true
	case wasm.OpI64GtU:
		return B2u(x > y), rt.TrapNone, true
	case wasm.OpI64LeS:
		return B2u(int64(x) <= int64(y)), rt.TrapNone, true
	case wasm.OpI64LeU:
		return B2u(x <= y), rt.TrapNone, true
	case wasm.OpI64GeS:
		return B2u(int64(x) >= int64(y)), rt.TrapNone, true
	case wasm.OpI64GeU:
		return B2u(x >= y), rt.TrapNone, true
	case wasm.OpF32Eq:
		return B2u(f32(x) == f32(y)), rt.TrapNone, true
	case wasm.OpF32Ne:
		return B2u(f32(x) != f32(y)), rt.TrapNone, true
	case wasm.OpF32Lt:
		return B2u(f32(x) < f32(y)), rt.TrapNone, true
	case wasm.OpF32Gt:
		return B2u(f32(x) > f32(y)), rt.TrapNone, true
	case wasm.OpF32Le:
		return B2u(f32(x) <= f32(y)), rt.TrapNone, true
	case wasm.OpF32Ge:
		return B2u(f32(x) >= f32(y)), rt.TrapNone, true
	case wasm.OpF64Eq:
		return B2u(f64v(x) == f64v(y)), rt.TrapNone, true
	case wasm.OpF64Ne:
		return B2u(f64v(x) != f64v(y)), rt.TrapNone, true
	case wasm.OpF64Lt:
		return B2u(f64v(x) < f64v(y)), rt.TrapNone, true
	case wasm.OpF64Gt:
		return B2u(f64v(x) > f64v(y)), rt.TrapNone, true
	case wasm.OpF64Le:
		return B2u(f64v(x) <= f64v(y)), rt.TrapNone, true
	case wasm.OpF64Ge:
		return B2u(f64v(x) >= f64v(y)), rt.TrapNone, true

	case wasm.OpI32Add:
		return uint64(uint32(x) + uint32(y)), rt.TrapNone, true
	case wasm.OpI32Sub:
		return uint64(uint32(x) - uint32(y)), rt.TrapNone, true
	case wasm.OpI32Mul:
		return uint64(uint32(x) * uint32(y)), rt.TrapNone, true
	case wasm.OpI32DivS:
		a, b := int32(x), int32(y)
		if b == 0 {
			return 0, rt.TrapDivByZero, true
		}
		if a == math.MinInt32 && b == -1 {
			return 0, rt.TrapIntOverflow, true
		}
		return uint64(uint32(a / b)), rt.TrapNone, true
	case wasm.OpI32DivU:
		if uint32(y) == 0 {
			return 0, rt.TrapDivByZero, true
		}
		return uint64(uint32(x) / uint32(y)), rt.TrapNone, true
	case wasm.OpI32RemS:
		a, b := int32(x), int32(y)
		if b == 0 {
			return 0, rt.TrapDivByZero, true
		}
		if a == math.MinInt32 && b == -1 {
			return 0, rt.TrapNone, true
		}
		return uint64(uint32(a % b)), rt.TrapNone, true
	case wasm.OpI32RemU:
		if uint32(y) == 0 {
			return 0, rt.TrapDivByZero, true
		}
		return uint64(uint32(x) % uint32(y)), rt.TrapNone, true
	case wasm.OpI32And:
		return uint64(uint32(x) & uint32(y)), rt.TrapNone, true
	case wasm.OpI32Or:
		return uint64(uint32(x) | uint32(y)), rt.TrapNone, true
	case wasm.OpI32Xor:
		return uint64(uint32(x) ^ uint32(y)), rt.TrapNone, true
	case wasm.OpI32Shl:
		return uint64(uint32(x) << (uint32(y) & 31)), rt.TrapNone, true
	case wasm.OpI32ShrS:
		return uint64(uint32(int32(x) >> (uint32(y) & 31))), rt.TrapNone, true
	case wasm.OpI32ShrU:
		return uint64(uint32(x) >> (uint32(y) & 31)), rt.TrapNone, true
	case wasm.OpI32Rotl:
		return uint64(bits.RotateLeft32(uint32(x), int(uint32(y)&31))), rt.TrapNone, true
	case wasm.OpI32Rotr:
		return uint64(bits.RotateLeft32(uint32(x), -int(uint32(y)&31))), rt.TrapNone, true

	case wasm.OpI64Add:
		return x + y, rt.TrapNone, true
	case wasm.OpI64Sub:
		return x - y, rt.TrapNone, true
	case wasm.OpI64Mul:
		return x * y, rt.TrapNone, true
	case wasm.OpI64DivS:
		a, b := int64(x), int64(y)
		if b == 0 {
			return 0, rt.TrapDivByZero, true
		}
		if a == math.MinInt64 && b == -1 {
			return 0, rt.TrapIntOverflow, true
		}
		return uint64(a / b), rt.TrapNone, true
	case wasm.OpI64DivU:
		if y == 0 {
			return 0, rt.TrapDivByZero, true
		}
		return x / y, rt.TrapNone, true
	case wasm.OpI64RemS:
		a, b := int64(x), int64(y)
		if b == 0 {
			return 0, rt.TrapDivByZero, true
		}
		if a == math.MinInt64 && b == -1 {
			return 0, rt.TrapNone, true
		}
		return uint64(a % b), rt.TrapNone, true
	case wasm.OpI64RemU:
		if y == 0 {
			return 0, rt.TrapDivByZero, true
		}
		return x % y, rt.TrapNone, true
	case wasm.OpI64And:
		return x & y, rt.TrapNone, true
	case wasm.OpI64Or:
		return x | y, rt.TrapNone, true
	case wasm.OpI64Xor:
		return x ^ y, rt.TrapNone, true
	case wasm.OpI64Shl:
		return x << (y & 63), rt.TrapNone, true
	case wasm.OpI64ShrS:
		return uint64(int64(x) >> (y & 63)), rt.TrapNone, true
	case wasm.OpI64ShrU:
		return x >> (y & 63), rt.TrapNone, true
	case wasm.OpI64Rotl:
		return bits.RotateLeft64(x, int(y&63)), rt.TrapNone, true
	case wasm.OpI64Rotr:
		return bits.RotateLeft64(x, -int(y&63)), rt.TrapNone, true

	case wasm.OpF32Add:
		return rf32(f32(x) + f32(y)), rt.TrapNone, true
	case wasm.OpF32Sub:
		return rf32(f32(x) - f32(y)), rt.TrapNone, true
	case wasm.OpF32Mul:
		return rf32(f32(x) * f32(y)), rt.TrapNone, true
	case wasm.OpF32Div:
		return rf32(f32(x) / f32(y)), rt.TrapNone, true
	case wasm.OpF32Min:
		return rf32(FMin32(f32(x), f32(y))), rt.TrapNone, true
	case wasm.OpF32Max:
		return rf32(FMax32(f32(x), f32(y))), rt.TrapNone, true
	case wasm.OpF32Copysign:
		return rf32(float32(math.Copysign(float64(f32(x)), float64(f32(y))))), rt.TrapNone, true
	case wasm.OpF64Add:
		return rf64(f64v(x) + f64v(y)), rt.TrapNone, true
	case wasm.OpF64Sub:
		return rf64(f64v(x) - f64v(y)), rt.TrapNone, true
	case wasm.OpF64Mul:
		return rf64(f64v(x) * f64v(y)), rt.TrapNone, true
	case wasm.OpF64Div:
		return rf64(f64v(x) / f64v(y)), rt.TrapNone, true
	case wasm.OpF64Min:
		return rf64(FMin64(f64v(x), f64v(y))), rt.TrapNone, true
	case wasm.OpF64Max:
		return rf64(FMax64(f64v(x), f64v(y))), rt.TrapNone, true
	case wasm.OpF64Copysign:
		return rf64(math.Copysign(f64v(x), f64v(y))), rt.TrapNone, true
	}
	return 0, rt.TrapNone, false
}
