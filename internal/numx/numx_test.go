package numx

import (
	"math"
	"testing"
	"testing/quick"

	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// TestShiftMasking: Wasm masks shift counts to the operand width.
func TestShiftMasking(t *testing.T) {
	f := func(x uint32, s uint64) bool {
		r, trap, ok := EvalBin(wasm.OpI32Shl, uint64(x), s)
		return ok && trap == rt.TrapNone && uint32(r) == x<<(uint32(s)&31)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x, s uint64) bool {
		r, trap, ok := EvalBin(wasm.OpI64ShrU, x, s)
		return ok && trap == rt.TrapNone && r == x>>(s&63)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// TestI32ResultsAreZeroExtended: every i32-typed result must have zero
// upper bits — the invariant the register file and value stack rely on.
func TestI32ResultsAreZeroExtended(t *testing.T) {
	ops := []wasm.Opcode{
		wasm.OpI32Add, wasm.OpI32Sub, wasm.OpI32Mul, wasm.OpI32And,
		wasm.OpI32Or, wasm.OpI32Xor, wasm.OpI32Shl, wasm.OpI32ShrS,
		wasm.OpI32ShrU, wasm.OpI32Rotl, wasm.OpI32Rotr,
	}
	f := func(x, y uint32) bool {
		for _, op := range ops {
			r, trap, ok := EvalBin(op, uint64(x), uint64(y))
			if !ok || trap != rt.TrapNone {
				return false
			}
			if r>>32 != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDivRemIdentity: a == (a/b)*b + a%b when defined.
func TestDivRemIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 || (a == math.MinInt32 && b == -1) {
			return true
		}
		q, _, _ := EvalBin(wasm.OpI32DivS, uint64(uint32(a)), uint64(uint32(b)))
		r, _, _ := EvalBin(wasm.OpI32RemS, uint64(uint32(a)), uint64(uint32(b)))
		return int32(q)*b+int32(r) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivTraps(t *testing.T) {
	if _, trap, _ := EvalBin(wasm.OpI32DivS, 5, 0); trap != rt.TrapDivByZero {
		t.Error("expected div-by-zero trap")
	}
	if _, trap, _ := EvalBin(wasm.OpI32DivS, uint64(0x80000000), uint64(0xFFFFFFFF)); trap != rt.TrapIntOverflow {
		t.Error("expected overflow trap")
	}
	if r, trap, _ := EvalBin(wasm.OpI32RemS, uint64(0x80000000), uint64(0xFFFFFFFF)); trap != rt.TrapNone || r != 0 {
		t.Error("MinInt32 rem -1 must be 0, not trap")
	}
	if _, trap, _ := EvalBin(wasm.OpI64DivU, 1, 0); trap != rt.TrapDivByZero {
		t.Error("expected i64 div-by-zero trap")
	}
}

func TestTruncTraps(t *testing.T) {
	nan := math.Float64bits(math.NaN())
	if _, trap, _ := EvalUn(wasm.OpI32TruncF64S, nan); trap != rt.TrapInvalidConversion {
		t.Error("NaN trunc must trap invalid")
	}
	big := math.Float64bits(3e10)
	if _, trap, _ := EvalUn(wasm.OpI32TruncF64S, big); trap != rt.TrapIntOverflow {
		t.Error("out-of-range trunc must trap overflow")
	}
	ok := math.Float64bits(-3.99)
	if r, trap, _ := EvalUn(wasm.OpI32TruncF64S, ok); trap != rt.TrapNone || int32(r) != -3 {
		t.Errorf("trunc(-3.99) = %d, trap %v", int32(r), trap)
	}
}

// TestSatTruncClamps: saturating truncation clamps instead of trapping,
// and NaN becomes zero.
func TestSatTruncClamps(t *testing.T) {
	f := func(x float64) bool {
		bits := math.Float64bits(x)
		r, trap, ok := EvalUn(wasm.OpI32TruncSatF64S, bits)
		if !ok || trap != rt.TrapNone {
			return false
		}
		v := int32(r)
		switch {
		case x != x:
			return v == 0
		case x <= math.MinInt32:
			return v == math.MinInt32
		case x >= math.MaxInt32:
			return v == math.MaxInt32
		default:
			return v == int32(x)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if SatToI64U(math.Inf(1)) != math.MaxUint64 {
		t.Error("sat u64 of +inf must be max")
	}
	if SatToI64U(-1) != 0 {
		t.Error("sat u64 of negative must be 0")
	}
}

func TestFloatMinMaxNaN(t *testing.T) {
	nan := math.NaN()
	if !math.IsNaN(FMin64(1, nan)) || !math.IsNaN(FMax64(nan, 2)) {
		t.Error("min/max must propagate NaN")
	}
	if FMin64(math.Copysign(0, -1), 0) != 0 || !math.Signbit(FMin64(math.Copysign(0, -1), 0)) {
		t.Error("min(-0, +0) must be -0")
	}
	if math.Signbit(FMax64(math.Copysign(0, -1), 0)) {
		t.Error("max(-0, +0) must be +0")
	}
	if FMin32(2, 1) != 1 || FMax32(2, 1) != 2 {
		t.Error("f32 min/max ordering wrong")
	}
}

// TestCommutativity for commutative operators.
func TestCommutativity(t *testing.T) {
	ops := []wasm.Opcode{
		wasm.OpI32Add, wasm.OpI32Mul, wasm.OpI32And, wasm.OpI32Or, wasm.OpI32Xor,
		wasm.OpI64Add, wasm.OpI64Mul, wasm.OpI64And, wasm.OpI64Or, wasm.OpI64Xor,
	}
	f := func(x, y uint64) bool {
		for _, op := range ops {
			a, _, _ := EvalBin(op, x, y)
			b, _, _ := EvalBin(op, y, x)
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestExtendsAndWraps round-trip.
func TestExtendsAndWraps(t *testing.T) {
	f := func(x int32) bool {
		ext, _, _ := EvalUn(wasm.OpI64ExtendI32S, uint64(uint32(x)))
		if int64(ext) != int64(x) {
			return false
		}
		wrap, _, _ := EvalUn(wasm.OpI32WrapI64, ext)
		return int32(wrap) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	r, _, _ := EvalUn(wasm.OpI32Extend8S, 0x80)
	if int32(r) != -128 {
		t.Errorf("extend8_s(0x80) = %d", int32(r))
	}
	r, _, _ = EvalUn(wasm.OpI64Extend32S, 0x80000000)
	if int64(r) != math.MinInt32 {
		t.Errorf("extend32_s = %d", int64(r))
	}
}

// TestReinterpretIsIdentity on the bit level.
func TestReinterpretIsIdentity(t *testing.T) {
	f := func(x uint64) bool {
		for _, op := range []wasm.Opcode{
			wasm.OpI64ReinterpretF64, wasm.OpF64ReinterpretI64,
		} {
			r, trap, ok := EvalUn(op, x)
			if !ok || trap != rt.TrapNone || r != x {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnknownOpsRejected(t *testing.T) {
	if _, _, ok := EvalUn(wasm.OpI32Add, 0); ok {
		t.Error("binary op accepted as unary")
	}
	if _, _, ok := EvalBin(wasm.OpI32Eqz, 0, 0); ok {
		t.Error("unary op accepted as binary")
	}
	if _, _, ok := EvalBin(wasm.OpBlock, 0, 0); ok {
		t.Error("control op accepted as numeric")
	}
}

func TestRotates(t *testing.T) {
	f := func(x uint32, n uint8) bool {
		l, _, _ := EvalBin(wasm.OpI32Rotl, uint64(x), uint64(n))
		r, _, _ := EvalBin(wasm.OpI32Rotr, l, uint64(n))
		return uint32(r) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
