package rewriter_test

import (
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/rewriter"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

func translate(t *testing.T, build func(f *wasm.FuncBuilder), ft wasm.FuncType) *rewriter.Code {
	t.Helper()
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("f", ft)
	build(f)
	m := b.Module()
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatal(err)
	}
	code, err := rewriter.Translate(m, 0, &m.Funcs[0], &infos[0])
	if err != nil {
		t.Fatal(err)
	}
	return code
}

// TestPreDecodingShrinksDispatches: the rewriter resolves control flow,
// so a loop body has no block/end bookkeeping instructions left.
func TestPreDecoding(t *testing.T) {
	code := translate(t, func(f *wasm.FuncBuilder) {
		i := f.AddLocal(wasm.I32)
		f.Block(wasm.BlockEmpty)
		f.Loop(wasm.BlockEmpty)
		f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
		f.I32Const(10).Op(wasm.OpI32LtS)
		f.BrIf(0)
		f.End()
		f.End()
		f.End()
	}, wasm.FuncType{})
	// 7 body instructions + the return + the loop-entry fuel
	// checkpoint; blocks/loops/ends translate to nothing (labels only).
	if len(code.Instrs) != 9 {
		t.Errorf("translated to %d instructions, want 9", len(code.Instrs))
	}
	if code.Bytes() == 0 {
		t.Error("code size not reported")
	}
}

// TestUnreachableCodeSkipped: dead code after br costs no translated
// instructions.
func TestUnreachableCodeSkipped(t *testing.T) {
	code := translate(t, func(f *wasm.FuncBuilder) {
		f.Block(wasm.BlockEmpty)
		f.Br(0)
		f.I32Const(1).Op(wasm.OpDrop) // dead
		f.End()
		f.End()
	}, wasm.FuncType{})
	for _, in := range code.Instrs {
		if in.Op == wasm.OpI32Const {
			t.Error("dead constant survived translation")
		}
	}
}

// TestRewriterEndToEnd runs a realistic program through the tier preset.
func TestRewriterEndToEnd(t *testing.T) {
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	f := b.NewFunc("collatz", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I32},
	})
	steps := f.AddLocal(wasm.I32)
	f.Block(wasm.BlockEmpty)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(0).I32Const(1).Op(wasm.OpI32LeS).BrIf(1)
	f.LocalGet(0).I32Const(1).Op(wasm.OpI32And)
	f.If(wasm.BlockEmpty)
	f.LocalGet(0).I32Const(3).Op(wasm.OpI32Mul).I32Const(1).Op(wasm.OpI32Add).LocalSet(0)
	f.Else()
	f.LocalGet(0).I32Const(2).Op(wasm.OpI32DivU).LocalSet(0)
	f.End()
	f.LocalGet(steps).I32Const(1).Op(wasm.OpI32Add).LocalSet(steps)
	f.Br(0)
	f.End()
	f.End()
	f.LocalGet(steps)
	f.End()
	b.Export("collatz", f.Idx)

	inst, err := engine.New(engines.Wasm3Like(), nil).Instantiate(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	got, err := inst.Call("collatz", wasm.ValI32(27))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].I32() != 111 {
		t.Errorf("collatz(27) = %d, want 111", got[0].I32())
	}
}
