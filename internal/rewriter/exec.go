package rewriter

import (
	"encoding/binary"
	"fmt"
	"math"

	"wizgo/internal/numx"
	"wizgo/internal/rt"
	"wizgo/internal/wasm"
)

// Run executes a translated function: a stack machine over pre-decoded
// instructions. No tags are written (rewriting interpreters in the study
// do no precise GC), no LEB decoding happens, and branches jump to
// absolute indices — the concrete reasons this tier beats the in-place
// interpreter on execution time while losing on setup time.
func (c *Code) Run(ctx *rt.Context, f *rt.FuncInst, vfp int) (rt.Status, error) {
	if err := ctx.CheckStack(vfp, c.NumSlots, f.Idx); err != nil {
		return rt.Done, err
	}
	slots := ctx.Stack.Slots
	for i := c.NumParams; i < len(c.LocalTypes); i++ {
		slots[vfp+i] = 0
	}
	inst := ctx.Inst
	mem := inst.Memory
	code := c.Instrs
	counting := ctx.CountStats
	// Hoisted so the back-edge poll is a register test + one atomic
	// load, not a ctx field reload.
	interrupt := ctx.Interrupt

	sp := vfp + len(c.LocalTypes)
	pc := 0

	frameIdx := ctx.PushFrame(rt.FrameInfo{Kind: rt.FrameInterp, Func: f, VFP: vfp, SP: sp})
	ctx.Depth++
	defer func() {
		ctx.Depth--
		ctx.PopFrame()
	}()

	trap := func(kind rt.TrapKind) error {
		return rt.NewTrap(kind, f.Idx, pc)
	}

	for {
		in := &code[pc]
		if counting {
			ctx.Stats.InterpOps++
		}
		switch in.Op {
		case opReturn:
			nres := c.NumResults
			copy(slots[vfp:vfp+nres], slots[sp-nres:sp])
			return rt.Done, nil
		case opFuel:
			// Loop-entry fuel checkpoint (sits before the header label,
			// so it runs on fall-in only). A>0: proven exact trip count —
			// prepay, then charge this arrival via FuelIter so degraded
			// mode stays in lockstep with per-arrival charging.
			if ctx.Fuel > 0 {
				if in.A > 0 {
					ctx.FuelPrepay(int64(in.A))
					if !ctx.FuelIter() {
						return rt.Done, trap(rt.TrapFuelExhausted)
					}
				} else if !ctx.FuelCheckpoint() {
					return rt.Done, trap(rt.TrapFuelExhausted)
				}
			}
		case opBr:
			// Backward branches are loop back-edges: the interruption
			// point (the rewriter has no OSR counter, so the target
			// comparison is the equivalent branch).
			if int(in.Target) <= pc {
				// An unconditional br is never the recognized counted
				// back-edge, so the charge is always unconditional.
				if ctx.Fuel > 0 && !ctx.FuelCheckpoint() {
					return rt.Done, trap(rt.TrapFuelExhausted)
				}
				if interrupt != nil && interrupt.Get() {
					return rt.Done, trap(rt.TrapInterrupted)
				}
			}
			sp = transfer(slots, sp, int(in.A), int(in.B))
			pc = int(in.Target)
			continue
		case opBrIfNZ:
			sp--
			if uint32(slots[sp]) != 0 {
				if int(in.Target) <= pc && ctx.Fuel > 0 {
					// Imm bit 1 marks a prepaid loop back-edge: the
					// charge is conditional (only in degraded mode).
					if in.Imm&2 != 0 {
						if !ctx.FuelIter() {
							return rt.Done, trap(rt.TrapFuelExhausted)
						}
					} else if !ctx.FuelCheckpoint() {
						return rt.Done, trap(rt.TrapFuelExhausted)
					}
				}
				// Imm bit 0 marks the back edge of a proven-terminating
				// counted loop: the interrupt poll is elided.
				if in.Imm&1 == 0 && int(in.Target) <= pc && interrupt != nil && interrupt.Get() {
					return rt.Done, trap(rt.TrapInterrupted)
				}
				sp = transfer(slots, sp, int(in.A), int(in.B))
				pc = int(in.Target)
				continue
			}
		case opBrIfZ:
			sp--
			if uint32(slots[sp]) == 0 {
				if int(in.Target) <= pc {
					if ctx.Fuel > 0 && !ctx.FuelCheckpoint() {
						return rt.Done, trap(rt.TrapFuelExhausted)
					}
					if interrupt != nil && interrupt.Get() {
						return rt.Done, trap(rt.TrapInterrupted)
					}
				}
				sp = transfer(slots, sp, int(in.A), int(in.B))
				pc = int(in.Target)
				continue
			}
		case opBrTableX:
			sp--
			t := c.Tables[in.A]
			idx := uint32(slots[sp])
			if int(idx) >= len(t) {
				idx = uint32(len(t) - 1)
			}
			// A br_table arm can be a loop back-edge too.
			if int(t[idx]) <= pc {
				if ctx.Fuel > 0 && !ctx.FuelCheckpoint() {
					return rt.Done, trap(rt.TrapFuelExhausted)
				}
				if interrupt != nil && interrupt.Get() {
					return rt.Done, trap(rt.TrapInterrupted)
				}
			}
			pc = int(t[idx])
			continue

		case wasm.OpNop:
		case wasm.OpUnreachable:
			return rt.Done, trap(rt.TrapUnreachable)

		case wasm.OpCall:
			callee := inst.Funcs[in.A]
			argBase := sp - len(callee.Type.Params)
			fr := &ctx.Frames[frameIdx]
			fr.SP = sp
			if err := ctx.Invoke(callee, argBase); err != nil {
				return rt.Done, err
			}
			sp = argBase + len(callee.Type.Results)
		case wasm.OpCallIndirect:
			sp--
			elem := uint32(slots[sp])
			table := inst.Tables[in.B]
			if int(elem) >= len(table.Elems) {
				return rt.Done, trap(rt.TrapOOBTable)
			}
			handle := table.Elems[elem]
			if handle == wasm.NullRef {
				return rt.Done, trap(rt.TrapNullFunc)
			}
			if handle > uint64(len(table.Funcs)) {
				// Dangling handle (e.g. a host-built table without owner
				// resolution): trap, never index out of range.
				return rt.Done, trap(rt.TrapNullFunc)
			}
			// Resolve in the table owner's function index space.
			callee := table.Funcs[handle-1]
			if !callee.Type.Equal(inst.Module.Types[in.A]) {
				return rt.Done, trap(rt.TrapIndirectSigMismatch)
			}
			argBase := sp - len(callee.Type.Params)
			fr := &ctx.Frames[frameIdx]
			fr.SP = sp
			if err := ctx.Invoke(callee, argBase); err != nil {
				return rt.Done, err
			}
			sp = argBase + len(callee.Type.Results)

		case wasm.OpLocalGet:
			slots[sp] = slots[vfp+int(in.A)]
			sp++
		case wasm.OpLocalSet:
			sp--
			slots[vfp+int(in.A)] = slots[sp]
		case wasm.OpLocalTee:
			slots[vfp+int(in.A)] = slots[sp-1]
		case wasm.OpGlobalGet:
			slots[sp] = inst.Globals[in.A].Bits
			sp++
		case wasm.OpGlobalSet:
			sp--
			inst.Globals[in.A].Bits = slots[sp]

		case wasm.OpI32Const, wasm.OpI64Const, wasm.OpF32Const, wasm.OpF64Const:
			slots[sp] = in.Imm
			sp++

		case wasm.OpDrop:
			sp--
		case wasm.OpSelect:
			sp -= 2
			if uint32(slots[sp+1]) == 0 {
				slots[sp-1] = slots[sp]
			}
		case wasm.OpRefIsNull:
			if slots[sp-1] == wasm.NullRef {
				slots[sp-1] = 1
			} else {
				slots[sp-1] = 0
			}

		case wasm.OpMemorySize:
			slots[sp] = uint64(mem.Pages())
			sp++
		case wasm.OpMemoryGrow:
			slots[sp-1] = uint64(uint32(mem.Grow(uint32(slots[sp-1]))))
		case wasm.OpMemoryCopy:
			sp -= 3
			dst, src, n := uint32(slots[sp]), uint32(slots[sp+1]), uint32(slots[sp+2])
			if !mem.InBounds(dst, 0, int(n)) || !mem.InBounds(src, 0, int(n)) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			mem.Mark(dst, 0, int(n))
			copy(mem.Data[dst:dst+n], mem.Data[src:src+n])
		case wasm.OpMemoryFill:
			sp -= 3
			dst, val, n := uint32(slots[sp]), byte(slots[sp+1]), uint32(slots[sp+2])
			if !mem.InBounds(dst, 0, int(n)) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			mem.Mark(dst, 0, int(n))
			for i := uint32(0); i < n; i++ {
				mem.Data[dst+i] = val
			}

		// Hot inline arithmetic; everything else goes through the
		// shared scalar semantics below.
		case wasm.OpI32Add:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) + uint32(slots[sp]))
		case wasm.OpI32Sub:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) - uint32(slots[sp]))
		case wasm.OpI32Mul:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) * uint32(slots[sp]))
		case wasm.OpI32And:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) & uint32(slots[sp]))
		case wasm.OpI32Or:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) | uint32(slots[sp]))
		case wasm.OpI32Xor:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) ^ uint32(slots[sp]))
		case wasm.OpI32Shl:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) << (uint32(slots[sp]) & 31))
		case wasm.OpI32ShrU:
			sp--
			slots[sp-1] = uint64(uint32(slots[sp-1]) >> (uint32(slots[sp]) & 31))
		case wasm.OpI32ShrS:
			sp--
			slots[sp-1] = uint64(uint32(int32(slots[sp-1]) >> (uint32(slots[sp]) & 31)))
		case wasm.OpI32Eq:
			sp--
			slots[sp-1] = numx.B2u(uint32(slots[sp-1]) == uint32(slots[sp]))
		case wasm.OpI32Ne:
			sp--
			slots[sp-1] = numx.B2u(uint32(slots[sp-1]) != uint32(slots[sp]))
		case wasm.OpI32LtS:
			sp--
			slots[sp-1] = numx.B2u(int32(slots[sp-1]) < int32(slots[sp]))
		case wasm.OpI32LtU:
			sp--
			slots[sp-1] = numx.B2u(uint32(slots[sp-1]) < uint32(slots[sp]))
		case wasm.OpI32GtS:
			sp--
			slots[sp-1] = numx.B2u(int32(slots[sp-1]) > int32(slots[sp]))
		case wasm.OpI32GeS:
			sp--
			slots[sp-1] = numx.B2u(int32(slots[sp-1]) >= int32(slots[sp]))
		case wasm.OpI32LeS:
			sp--
			slots[sp-1] = numx.B2u(int32(slots[sp-1]) <= int32(slots[sp]))
		case wasm.OpI32Eqz:
			slots[sp-1] = numx.B2u(uint32(slots[sp-1]) == 0)
		case wasm.OpI64Add:
			sp--
			slots[sp-1] += slots[sp]
		case wasm.OpI64Sub:
			sp--
			slots[sp-1] -= slots[sp]
		case wasm.OpI64Mul:
			sp--
			slots[sp-1] *= slots[sp]
		case wasm.OpF64Add:
			sp--
			slots[sp-1] = math.Float64bits(math.Float64frombits(slots[sp-1]) + math.Float64frombits(slots[sp]))
		case wasm.OpF64Sub:
			sp--
			slots[sp-1] = math.Float64bits(math.Float64frombits(slots[sp-1]) - math.Float64frombits(slots[sp]))
		case wasm.OpF64Mul:
			sp--
			slots[sp-1] = math.Float64bits(math.Float64frombits(slots[sp-1]) * math.Float64frombits(slots[sp]))
		case wasm.OpF64Div:
			sp--
			slots[sp-1] = math.Float64bits(math.Float64frombits(slots[sp-1]) / math.Float64frombits(slots[sp]))

		// A==1 on a memory access marks it proven in bounds by the
		// static analysis: the check short-circuits. Under -tags
		// checked the elided check survives as an assertion.
		case wasm.OpI32Load:
			addr := uint32(slots[sp-1])
			if in.A == 0 && !mem.InBounds(addr, uint32(in.Imm), 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && in.A != 0 {
				assertInBounds(mem, addr, uint32(in.Imm), 4, f, pc)
			}
			slots[sp-1] = uint64(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case wasm.OpI64Load, wasm.OpF64Load:
			addr := uint32(slots[sp-1])
			if in.A == 0 && !mem.InBounds(addr, uint32(in.Imm), 8) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && in.A != 0 {
				assertInBounds(mem, addr, uint32(in.Imm), 8, f, pc)
			}
			slots[sp-1] = binary.LittleEndian.Uint64(mem.Data[int(addr)+int(uint32(in.Imm)):])
		case wasm.OpF32Load:
			addr := uint32(slots[sp-1])
			if in.A == 0 && !mem.InBounds(addr, uint32(in.Imm), 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && in.A != 0 {
				assertInBounds(mem, addr, uint32(in.Imm), 4, f, pc)
			}
			slots[sp-1] = uint64(binary.LittleEndian.Uint32(mem.Data[int(addr)+int(uint32(in.Imm)):]))
		case wasm.OpI32Store, wasm.OpF32Store:
			sp -= 2
			addr := uint32(slots[sp])
			if in.A == 0 && !mem.InBounds(addr, uint32(in.Imm), 4) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && in.A != 0 {
				assertInBounds(mem, addr, uint32(in.Imm), 4, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 4)
			binary.LittleEndian.PutUint32(mem.Data[int(addr)+int(uint32(in.Imm)):], uint32(slots[sp+1]))
		case wasm.OpI64Store, wasm.OpF64Store:
			sp -= 2
			addr := uint32(slots[sp])
			if in.A == 0 && !mem.InBounds(addr, uint32(in.Imm), 8) {
				return rt.Done, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && in.A != 0 {
				assertInBounds(mem, addr, uint32(in.Imm), 8, f, pc)
			}
			mem.Mark(addr, uint32(in.Imm), 8)
			binary.LittleEndian.PutUint64(mem.Data[int(addr)+int(uint32(in.Imm)):], slots[sp+1])

		default:
			// Remaining memory widths and numeric long tail.
			newSP, err := c.slowOp(in, slots, sp, mem, f, pc)
			if err != nil {
				return rt.Done, err
			}
			sp = newSP
		}
		pc++
	}
}

// assertInBounds re-executes an analysis-elided bounds check under
// `-tags checked`. A failure is a soundness bug in internal/analysis —
// never a guest-program error — so it panics instead of trapping.
func assertInBounds(mem *rt.Memory, addr, off uint32, size int, f *rt.FuncInst, pc int) {
	if !mem.InBounds(addr, off, size) {
		panic(fmt.Sprintf("rewriter: checked build: analysis-elided bounds check failed: func %d pc %d addr %d+%d size %d", f.Idx, pc, addr, off, size))
	}
}

// transfer moves the top val slots down past pop discarded slots.
func transfer(slots []uint64, sp, val, pop int) int {
	if pop > 0 {
		if val > 0 {
			copy(slots[sp-val-pop:sp-pop], slots[sp-val:sp])
		}
		sp -= pop
	}
	return sp
}

// slowOp executes the long tail: narrow loads/stores and generic
// numeric operations via the shared scalar semantics.
func (c *Code) slowOp(in *Instr, slots []uint64, sp int, mem *rt.Memory, f *rt.FuncInst, pc int) (int, error) {
	trap := func(kind rt.TrapKind) error {
		return rt.NewTrap(kind, f.Idx, pc)
	}
	op := in.Op
	if op.Imm() == wasm.ImmMem {
		params, results, _ := op.Sig()
		if len(results) > 0 { // load
			size := loadSize(op)
			addr := uint32(slots[sp-1])
			if in.A == 0 && !mem.InBounds(addr, uint32(in.Imm), size) {
				return sp, trap(rt.TrapOOBMemory)
			}
			if rt.Checked && in.A != 0 {
				assertInBounds(mem, addr, uint32(in.Imm), size, f, pc)
			}
			slots[sp-1] = loadBits(op, mem.Data, int(addr)+int(uint32(in.Imm)))
			return sp, nil
		}
		_ = params
		sp -= 2
		size := storeSize(op)
		addr := uint32(slots[sp])
		if in.A == 0 && !mem.InBounds(addr, uint32(in.Imm), size) {
			return sp, trap(rt.TrapOOBMemory)
		}
		if rt.Checked && in.A != 0 {
			assertInBounds(mem, addr, uint32(in.Imm), size, f, pc)
		}
		mem.Mark(addr, uint32(in.Imm), size)
		storeBits(op, mem.Data, int(addr)+int(uint32(in.Imm)), slots[sp+1])
		return sp, nil
	}

	params, _, ok := op.Sig()
	if !ok {
		return sp, trap(rt.TrapUnreachable)
	}
	switch len(params) {
	case 1:
		v, kind, ok := numx.EvalUn(op, slots[sp-1])
		if !ok {
			return sp, trap(rt.TrapUnreachable)
		}
		if kind != rt.TrapNone {
			return sp, trap(kind)
		}
		slots[sp-1] = v
	case 2:
		sp--
		v, kind, ok := numx.EvalBin(op, slots[sp-1], slots[sp])
		if !ok {
			return sp, trap(rt.TrapUnreachable)
		}
		if kind != rt.TrapNone {
			return sp, trap(kind)
		}
		slots[sp-1] = v
	default:
		return sp, trap(rt.TrapUnreachable)
	}
	return sp, nil
}

func loadSize(op wasm.Opcode) int {
	switch op {
	case wasm.OpI32Load8S, wasm.OpI32Load8U, wasm.OpI64Load8S, wasm.OpI64Load8U:
		return 1
	case wasm.OpI32Load16S, wasm.OpI32Load16U, wasm.OpI64Load16S, wasm.OpI64Load16U:
		return 2
	case wasm.OpI64Load32S, wasm.OpI64Load32U, wasm.OpI32Load, wasm.OpF32Load:
		return 4
	default:
		return 8
	}
}

func storeSize(op wasm.Opcode) int {
	switch op {
	case wasm.OpI32Store8, wasm.OpI64Store8:
		return 1
	case wasm.OpI32Store16, wasm.OpI64Store16:
		return 2
	case wasm.OpI32Store, wasm.OpF32Store, wasm.OpI64Store32:
		return 4
	default:
		return 8
	}
}

func loadBits(op wasm.Opcode, data []byte, at int) uint64 {
	switch op {
	case wasm.OpI32Load8S:
		return uint64(uint32(int32(int8(data[at]))))
	case wasm.OpI32Load8U, wasm.OpI64Load8U:
		return uint64(data[at])
	case wasm.OpI32Load16S:
		return uint64(uint32(int32(int16(binary.LittleEndian.Uint16(data[at:])))))
	case wasm.OpI32Load16U, wasm.OpI64Load16U:
		return uint64(binary.LittleEndian.Uint16(data[at:]))
	case wasm.OpI64Load8S:
		return uint64(int64(int8(data[at])))
	case wasm.OpI64Load16S:
		return uint64(int64(int16(binary.LittleEndian.Uint16(data[at:]))))
	case wasm.OpI64Load32S:
		return uint64(int64(int32(binary.LittleEndian.Uint32(data[at:]))))
	case wasm.OpI64Load32U:
		return uint64(binary.LittleEndian.Uint32(data[at:]))
	default:
		return binary.LittleEndian.Uint64(data[at:])
	}
}

func storeBits(op wasm.Opcode, data []byte, at int, v uint64) {
	switch op {
	case wasm.OpI32Store8, wasm.OpI64Store8:
		data[at] = byte(v)
	case wasm.OpI32Store16, wasm.OpI64Store16:
		binary.LittleEndian.PutUint16(data[at:], uint16(v))
	case wasm.OpI64Store32:
		binary.LittleEndian.PutUint32(data[at:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(data[at:], v)
	}
}
