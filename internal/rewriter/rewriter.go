// Package rewriter implements a rewriting interpreter tier in the style
// of wasm3: at load time each function body is translated once into a
// threaded internal format — opcodes widened, LEB immediates pre-decoded,
// branch targets resolved to absolute indices with explicit value
// transfer counts — and executed by a stack-machine loop over that
// format. Compared to the in-place interpreter it pays a per-module
// translation cost (setup time) to remove per-instruction decode work
// (no LEB decoding, no sidetable indirection, no tag stores), which is
// exactly where the paper's Figure 10 places rewriting interpreters:
// faster than in-place interpretation, far below compiled code.
package rewriter

import (
	"fmt"

	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// Internal pseudo-opcodes layered above the Wasm opcode space.
const (
	opReturn wasm.Opcode = 0x1000 + iota
	opBr                 // unconditional, with transfer
	opBrIfNZ             // branch if top != 0
	opBrIfZ              // branch if top == 0 (compiled from `if`)
	opBrTableX
	// opFuel is the loop-entry fuel checkpoint, emitted before the
	// header label so back-edges never re-execute it. A holds the
	// proven exact trip count for prepaid loops, 0 for a plain
	// per-entry charge.
	opFuel
)

// Instr is one pre-decoded instruction.
type Instr struct {
	Op wasm.Opcode
	// A carries a local/global/function/type index, or ValCount for
	// branches; B carries PopCount for branches.
	A, B int32
	// Target is the resolved jump destination.
	Target int32
	// Imm carries constants and memory offsets.
	Imm uint64
}

// Code is a translated function body.
type Code struct {
	Instrs     []Instr
	Tables     [][]int32 // br_table target trampoline vectors
	NumSlots   int
	NumResults int
	LocalTypes []wasm.ValueType
	NumParams  int
	codeBytes  int
}

// Bytes implements the engine Code interface: translated size, at 16
// bytes per pre-decoded instruction.
func (c *Code) Bytes() int { return c.codeBytes }

// Tier translates functions for an engine preset.
type Tier struct{ TierName string }

// Name implements engine.Tier.
func (t Tier) Name() string {
	if t.TierName != "" {
		return t.TierName
	}
	return "rewriter"
}

type label struct {
	bound   int
	fixups  []int
	tfixups [][2]int
}

type xlat struct {
	m      *wasm.Module
	info   *validate.FuncInfo
	out    []Instr
	tables [][]int32
	labels []label
	ctrls  []xctrl
	h      int
}

type xctrl struct {
	op         wasm.Opcode
	label      int // end label (header label for loops)
	elseLabel  int
	height     int
	nIn, nOut  int
	hasElse    bool
	headerPos  int
	unreach    bool
	wasUnreach bool
}

func (x *xlat) newLabel() int {
	x.labels = append(x.labels, label{bound: -1})
	return len(x.labels) - 1
}

func (x *xlat) bind(l int) {
	lb := &x.labels[l]
	lb.bound = len(x.out)
	for _, fix := range lb.fixups {
		x.out[fix].Target = int32(lb.bound)
	}
	for _, tf := range lb.tfixups {
		x.tables[tf[0]][tf[1]] = int32(lb.bound)
	}
}

func (x *xlat) emit(in Instr) int {
	x.out = append(x.out, in)
	return len(x.out) - 1
}

func (x *xlat) emitBranch(in Instr, l int) int {
	if x.labels[l].bound >= 0 {
		in.Target = int32(x.labels[l].bound)
		return x.emit(in)
	}
	idx := x.emit(in)
	x.labels[l].fixups = append(x.labels[l].fixups, idx)
	return idx
}

func (x *xlat) frameAt(d uint32) *xctrl { return &x.ctrls[len(x.ctrls)-1-int(d)] }

func (x *xlat) branchArgs(fr *xctrl) (val, pop int32) {
	arity := fr.nOut
	if fr.op == wasm.OpLoop {
		arity = fr.nIn
	}
	p := x.h - arity - fr.height
	if p < 0 {
		p = 0
	}
	return int32(arity), int32(p)
}

func (x *xlat) target(fr *xctrl) int { return fr.label }

// Translate pre-decodes one function body.
func Translate(m *wasm.Module, fidx uint32, decl *wasm.Func, info *validate.FuncInfo) (*Code, error) {
	x := &xlat{m: m, info: info}
	ft := m.Types[decl.TypeIdx]
	funcLabel := x.newLabel()
	x.ctrls = append(x.ctrls, xctrl{label: funcLabel, elseLabel: -1, nOut: len(ft.Results)})

	r := wasm.NewReader(decl.Body)
	for r.Len() > 0 {
		pc := r.Pos
		op, err := r.ReadOpcode()
		if err != nil {
			return nil, err
		}
		if len(x.ctrls) == 0 {
			return nil, fmt.Errorf("rewriter: instructions after end")
		}
		if err := x.instr(op, r, pc); err != nil {
			return nil, err
		}
	}
	for _, lb := range x.labels {
		if lb.bound < 0 && (len(lb.fixups) > 0 || len(lb.tfixups) > 0) {
			return nil, fmt.Errorf("rewriter: unbound label")
		}
	}
	return &Code{
		Instrs:     x.out,
		Tables:     x.tables,
		NumSlots:   info.NumSlots(),
		NumResults: len(info.Results),
		LocalTypes: info.LocalTypes,
		NumParams:  info.NumParams,
		codeBytes:  len(x.out) * 16,
	}, nil
}

func (x *xlat) blockArity(r *wasm.Reader) (nIn, nOut int, err error) {
	bt, err := r.S33()
	if err != nil {
		return 0, 0, err
	}
	if bt >= 0 {
		t := x.m.Types[bt]
		return len(t.Params), len(t.Results), nil
	}
	if bt == -64 {
		return 0, 0, nil
	}
	return 0, 1, nil
}

// instr translates one instruction; pc is its bytecode offset, used to
// look up analysis facts.
func (x *xlat) instr(op wasm.Opcode, r *wasm.Reader, pc int) error {
	// Skip unreachable code: it cannot execute, and its stack heights
	// are polymorphic. Control nesting is still tracked.
	if x.ctrls[len(x.ctrls)-1].unreach {
		switch op {
		case wasm.OpBlock, wasm.OpLoop, wasm.OpIf:
			if _, _, err := x.blockArity(r); err != nil {
				return err
			}
			x.ctrls = append(x.ctrls, xctrl{op: op, label: -1, elseLabel: -1,
				unreach: true, wasUnreach: true, height: x.h})
		case wasm.OpElse:
			fr := &x.ctrls[len(x.ctrls)-1]
			fr.hasElse = true
			if !fr.wasUnreach {
				// Live if whose then-arm ended unreachable.
				x.bind(fr.elseLabel)
				x.h = fr.height + fr.nIn
				fr.unreach = false
			}
		case wasm.OpEnd:
			fr := x.ctrls[len(x.ctrls)-1]
			x.ctrls = x.ctrls[:len(x.ctrls)-1]
			if fr.wasUnreach {
				return nil // parent stays unreachable
			}
			if fr.op == wasm.OpIf && !fr.hasElse {
				x.bind(fr.elseLabel)
			}
			if fr.op != wasm.OpLoop && fr.label >= 0 {
				x.bind(fr.label)
			}
			if len(x.ctrls) == 0 {
				x.emit(Instr{Op: opReturn})
				return nil
			}
			x.h = fr.height + fr.nOut
		default:
			return r.SkipImm(op)
		}
		return nil
	}

	switch op {
	case wasm.OpBlock:
		nIn, nOut, err := x.blockArity(r)
		if err != nil {
			return err
		}
		x.ctrls = append(x.ctrls, xctrl{
			op: wasm.OpBlock, label: x.newLabel(), elseLabel: -1,
			height: x.h - nIn, nIn: nIn, nOut: nOut,
		})
	case wasm.OpLoop:
		nIn, nOut, err := x.blockArity(r)
		if err != nil {
			return err
		}
		// Loop-entry fuel checkpoint before the header label: executes
		// on fall-in only; back-edges charge at their branch sites.
		x.emit(Instr{Op: opFuel, A: int32(x.info.Facts.TripsAt(r.Pos))})
		l := x.newLabel()
		x.bind(l)
		x.ctrls = append(x.ctrls, xctrl{
			op: wasm.OpLoop, label: l, elseLabel: -1,
			height: x.h - nIn, nIn: nIn, nOut: nOut,
		})
	case wasm.OpIf:
		nIn, nOut, err := x.blockArity(r)
		if err != nil {
			return err
		}
		x.h--
		fr := xctrl{
			op: wasm.OpIf, label: x.newLabel(), elseLabel: x.newLabel(),
			height: x.h - nIn, nIn: nIn, nOut: nOut,
		}
		x.emitBranch(Instr{Op: opBrIfZ, A: int32(nIn)}, fr.elseLabel)
		x.ctrls = append(x.ctrls, fr)
	case wasm.OpElse:
		fr := &x.ctrls[len(x.ctrls)-1]
		fr.hasElse = true
		x.emitBranch(Instr{Op: opBr, A: int32(fr.nOut)}, fr.label)
		x.bind(fr.elseLabel)
		x.h = fr.height + fr.nIn
		fr.unreach = false
	case wasm.OpEnd:
		fr := x.ctrls[len(x.ctrls)-1]
		x.ctrls = x.ctrls[:len(x.ctrls)-1]
		if fr.op == wasm.OpIf && !fr.hasElse && fr.elseLabel >= 0 {
			x.bind(fr.elseLabel)
		}
		if fr.op != wasm.OpLoop && fr.label >= 0 {
			x.bind(fr.label)
		}
		if len(x.ctrls) == 0 {
			x.emit(Instr{Op: opReturn})
			return nil
		}
		x.h = fr.height + fr.nOut
	case wasm.OpBr:
		d, err := r.U32()
		if err != nil {
			return err
		}
		fr := x.frameAt(d)
		val, pop := x.branchArgs(fr)
		x.emitBranch(Instr{Op: opBr, A: val, B: pop}, x.target(fr))
		x.ctrls[len(x.ctrls)-1].unreach = true
	case wasm.OpBrIf:
		d, err := r.U32()
		if err != nil {
			return err
		}
		x.h--
		fr := x.frameAt(d)
		val, pop := x.branchArgs(fr)
		in := Instr{Op: opBrIfNZ, A: val, B: pop}
		if fr.op == wasm.OpLoop {
			// Imm bit 0: proven-terminating counted loop — the executor
			// skips the interrupt poll on this back edge. Imm bit 1:
			// the loop's fuel was prepaid at entry — the back-edge
			// charge becomes conditional (FuelIter).
			if x.info.Facts.NoPollAt(pc) {
				in.Imm |= 1
			}
			if x.info.Facts.PrepaidAt(pc) {
				in.Imm |= 2
			}
		}
		x.emitBranch(in, x.target(fr))
	case wasm.OpBrTable:
		n, err := r.U32()
		if err != nil {
			return err
		}
		x.h--
		depths := make([]uint32, n+1)
		for i := range depths {
			if depths[i], err = r.U32(); err != nil {
				return err
			}
		}
		// The table jumps to per-target trampoline br instructions so
		// each target can have distinct transfer counts.
		tidx := len(x.tables)
		x.tables = append(x.tables, make([]int32, len(depths)))
		trampLabels := make([]int, len(depths))
		for i := range depths {
			trampLabels[i] = x.newLabel()
			x.labels[trampLabels[i]].tfixups = append(x.labels[trampLabels[i]].tfixups, [2]int{tidx, i})
		}
		x.emit(Instr{Op: opBrTableX, A: int32(tidx)})
		for i, d := range depths {
			x.bind(trampLabels[i])
			fr := x.frameAt(d)
			val, pop := x.branchArgs(fr)
			x.emitBranch(Instr{Op: opBr, A: val, B: pop}, x.target(fr))
		}
		x.ctrls[len(x.ctrls)-1].unreach = true
	case wasm.OpReturn:
		x.emit(Instr{Op: opReturn})
		x.ctrls[len(x.ctrls)-1].unreach = true
	case wasm.OpCall:
		fidx, err := r.U32()
		if err != nil {
			return err
		}
		ft, err := x.m.FuncTypeAt(fidx)
		if err != nil {
			return err
		}
		x.emit(Instr{Op: wasm.OpCall, A: int32(fidx)})
		x.h += len(ft.Results) - len(ft.Params)
	case wasm.OpCallIndirect:
		typeIdx, err := r.U32()
		if err != nil {
			return err
		}
		tblIdx, err := r.U32()
		if err != nil {
			return err
		}
		ft := x.m.Types[typeIdx]
		x.emit(Instr{Op: wasm.OpCallIndirect, A: int32(typeIdx), B: int32(tblIdx)})
		x.h += len(ft.Results) - len(ft.Params) - 1
	case wasm.OpLocalGet, wasm.OpLocalSet, wasm.OpLocalTee:
		idx, err := r.U32()
		if err != nil {
			return err
		}
		x.emit(Instr{Op: op, A: int32(idx)})
		if op == wasm.OpLocalGet {
			x.h++
		} else if op == wasm.OpLocalSet {
			x.h--
		}
	case wasm.OpGlobalGet, wasm.OpGlobalSet:
		idx, err := r.U32()
		if err != nil {
			return err
		}
		x.emit(Instr{Op: op, A: int32(idx)})
		if op == wasm.OpGlobalGet {
			x.h++
		} else {
			x.h--
		}
	case wasm.OpI32Const:
		v, err := r.S32()
		if err != nil {
			return err
		}
		x.emit(Instr{Op: op, Imm: uint64(uint32(v))})
		x.h++
	case wasm.OpI64Const:
		v, err := r.S64()
		if err != nil {
			return err
		}
		x.emit(Instr{Op: op, Imm: uint64(v)})
		x.h++
	case wasm.OpF32Const:
		bits, err := r.F32()
		if err != nil {
			return err
		}
		x.emit(Instr{Op: op, Imm: uint64(bits)})
		x.h++
	case wasm.OpF64Const:
		bits, err := r.F64()
		if err != nil {
			return err
		}
		x.emit(Instr{Op: op, Imm: bits})
		x.h++
	case wasm.OpMemorySize, wasm.OpMemoryGrow:
		if _, err := r.Byte(); err != nil {
			return err
		}
		x.emit(Instr{Op: op})
		if op == wasm.OpMemorySize {
			x.h++
		}
	case wasm.OpMemoryCopy:
		if _, err := r.Take(2); err != nil {
			return err
		}
		x.emit(Instr{Op: op})
		x.h -= 3
	case wasm.OpMemoryFill:
		if _, err := r.Byte(); err != nil {
			return err
		}
		x.emit(Instr{Op: op})
		x.h -= 3
	case wasm.OpRefNull:
		if _, err := r.Byte(); err != nil {
			return err
		}
		x.emit(Instr{Op: wasm.OpI64Const, Imm: wasm.NullRef})
		x.h++
	case wasm.OpRefIsNull:
		x.emit(Instr{Op: op})
	case wasm.OpRefFunc:
		fidx, err := r.U32()
		if err != nil {
			return err
		}
		x.emit(Instr{Op: wasm.OpI64Const, Imm: uint64(fidx) + 1})
		x.h++
	case wasm.OpDrop:
		x.emit(Instr{Op: op})
		x.h--
	case wasm.OpSelect:
		x.emit(Instr{Op: op})
		x.h -= 2
	case wasm.OpSelectT:
		n, err := r.U32()
		if err != nil {
			return err
		}
		if _, err := r.Take(int(n)); err != nil {
			return err
		}
		x.emit(Instr{Op: wasm.OpSelect})
		x.h -= 2
	case wasm.OpNop:
		x.emit(Instr{Op: op})
	case wasm.OpUnreachable:
		x.emit(Instr{Op: op})
		x.ctrls[len(x.ctrls)-1].unreach = true
	default:
		// Memory access and numeric instructions.
		switch op.Imm() {
		case wasm.ImmMem:
			if _, err := r.U32(); err != nil {
				return err
			}
			off, err := r.U32()
			if err != nil {
				return err
			}
			in := Instr{Op: op, Imm: uint64(off)}
			if x.info.Facts.InBoundsAt(pc) {
				// A=1 marks the access proven in bounds; the flag
				// round-trips through the serialized artifact.
				in.A = 1
			}
			x.emit(in)
			if _, results, ok := op.Sig(); ok && len(results) > 0 {
				// load: addr -> value, height unchanged
			} else {
				x.h -= 2
			}
		case wasm.ImmNone:
			params, results, ok := op.Sig()
			if !ok {
				return fmt.Errorf("rewriter: unsupported opcode %v", op)
			}
			x.emit(Instr{Op: op})
			x.h += len(results) - len(params)
		default:
			return fmt.Errorf("rewriter: unsupported opcode %v", op)
		}
	}
	return nil
}
