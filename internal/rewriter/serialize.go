package rewriter

import (
	"encoding/binary"
	"errors"
	"fmt"

	"wizgo/internal/wasm"
	"wizgo/internal/wbin"
)

// instrRecordSize is the fixed on-disk width of one translated
// instruction: three little-endian u64 words — (op | A<<32),
// (B | Target<<32), Imm. Fixed-width word-packed records decode in a
// branch-free bulk loop of three loads and a few shifts, which is what
// cold-start rehydration spends its time on (see mach/serialize.go).
const instrRecordSize = 3 * 8

// AppendTo serializes the translated body for the persistent artifact
// cache. Like mach code, the format is self-contained: branch targets
// are absolute indices into the function's own instruction slice.
func (c *Code) AppendTo(w *wbin.Writer) error {
	w.Uvarint(uint64(len(c.Instrs)))
	b := w.Reserve(instrRecordSize * len(c.Instrs))
	for i, in := range c.Instrs {
		rec := b[i*instrRecordSize : (i+1)*instrRecordSize]
		binary.LittleEndian.PutUint64(rec[0:], uint64(uint16(in.Op))|uint64(uint32(in.A))<<32)
		binary.LittleEndian.PutUint64(rec[8:], uint64(uint32(in.B))|uint64(uint32(in.Target))<<32)
		binary.LittleEndian.PutUint64(rec[16:], in.Imm)
	}
	w.Uvarint(uint64(len(c.Tables)))
	for _, t := range c.Tables {
		w.Uvarint(uint64(len(t)))
		for _, target := range t {
			w.Varint(int64(target))
		}
	}
	w.Uvarint(uint64(c.NumSlots))
	w.Uvarint(uint64(c.NumResults))
	w.Uvarint(uint64(c.NumParams))
	w.Uvarint(uint64(len(c.LocalTypes)))
	for _, t := range c.LocalTypes {
		w.U8(uint8(t))
	}
	w.Uvarint(uint64(c.codeBytes))
	return nil
}

// DecodeArena preallocates one artifact's worth of translated-body
// bulk storage in contiguous blocks, mirroring mach.DecodeArena: the
// artifact header records exact totals so rehydration makes one
// allocation per kind instead of a few per function. A nil or
// exhausted arena degrades to plain allocation.
type DecodeArena struct {
	codes  []Code
	instrs []Instr
	types  []wasm.ValueType
}

// NewDecodeArena sizes an arena for nCodes translated bodies holding
// nInstrs instructions and nTypes local types in total. Callers must
// validate the totals against the input length before trusting them
// with an allocation.
func NewDecodeArena(nCodes, nInstrs, nTypes int) *DecodeArena {
	return &DecodeArena{
		codes:  make([]Code, 0, nCodes),
		instrs: make([]Instr, 0, nInstrs),
		types:  make([]wasm.ValueType, 0, nTypes),
	}
}

func (a *DecodeArena) nextCode() *Code {
	if a == nil || len(a.codes) == cap(a.codes) {
		return &Code{}
	}
	a.codes = a.codes[:len(a.codes)+1]
	return &a.codes[len(a.codes)-1]
}

func (a *DecodeArena) takeInstrs(n int) []Instr {
	if a == nil || len(a.instrs)+n > cap(a.instrs) {
		return make([]Instr, n)
	}
	s := a.instrs[len(a.instrs) : len(a.instrs)+n]
	a.instrs = a.instrs[:len(a.instrs)+n]
	return s
}

func (a *DecodeArena) takeTypes(n int) []wasm.ValueType {
	if a == nil || len(a.types)+n > cap(a.types) {
		return make([]wasm.ValueType, n)
	}
	s := a.types[len(a.types) : len(a.types)+n]
	a.types = a.types[:len(a.types)+n]
	return s
}

// DecodeCode reconstructs a serialized translated body, drawing bulk
// storage from arena (which may be nil). Lengths are validated before
// allocation and branch targets are bounds-checked, so corrupt input
// yields an error, never a panic or a wild jump.
func DecodeCode(r *wbin.Reader, arena *DecodeArena) (*Code, error) {
	c := arena.nextCode()
	nInstr := r.Count(instrRecordSize)
	c.Instrs = arena.takeInstrs(nInstr)
	if b := r.Take(instrRecordSize * nInstr); b != nil {
		for i := range c.Instrs {
			w0 := binary.LittleEndian.Uint64(b[0:])
			w1 := binary.LittleEndian.Uint64(b[8:])
			w2 := binary.LittleEndian.Uint64(b[16:])
			b = b[instrRecordSize:]
			in := Instr{
				Op:     wasm.Opcode(uint16(w0)),
				A:      int32(uint32(w0 >> 32)),
				B:      int32(uint32(w1)),
				Target: int32(uint32(w1 >> 32)),
				Imm:    w2,
			}
			// Branch targets are validated here, inside the bulk loop,
			// rather than in a second pass — rehydration traverses the
			// instruction stream exactly once.
			switch in.Op {
			case opBr, opBrIfNZ, opBrIfZ:
				if in.Target < 0 || int(in.Target) > nInstr {
					return nil, fmt.Errorf("rewriter: instr %d branch target %d out of range", i, in.Target)
				}
			}
			c.Instrs[i] = in
		}
	}
	if n := r.Count(1); n > 0 {
		c.Tables = make([][]int32, n)
		for i := range c.Tables {
			m := r.Count(1)
			c.Tables[i] = make([]int32, m)
			for j := range c.Tables[i] {
				t := r.Varint()
				if t < 0 || t > int64(len(c.Instrs)) {
					return nil, fmt.Errorf("rewriter: br_table target %d out of range", t)
				}
				c.Tables[i][j] = int32(t)
			}
		}
	}
	c.NumSlots = int(r.Uvarint())
	c.NumResults = int(r.Uvarint())
	c.NumParams = int(r.Uvarint())
	nLocals := r.Count(1)
	c.LocalTypes = arena.takeTypes(nLocals)
	for i := range c.LocalTypes {
		c.LocalTypes[i] = wasm.ValueType(r.U8())
	}
	c.codeBytes = int(r.Uvarint())

	if err := r.Err(); err != nil {
		return nil, err
	}
	if c.NumSlots < 0 || c.NumResults < 0 || c.NumParams < 0 {
		return nil, errors.New("rewriter: negative frame dimension")
	}
	return c, nil
}
