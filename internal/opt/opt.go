// Package opt implements the optimizing compiler tier used by the
// "red and purple" engines of Figure 10 (TurboFan-, Cranelift-,
// JSC-BBQ/OMG- and LLVM-style configurations). It is deliberately a
// multi-pass pipeline — the structural property that separates
// optimizing tiers from baselines in the paper's SQ-space:
//
//  1. an analysis pre-pass ranks locals by use count (inside
//     internal/spc) and pins the hottest ones into dedicated registers
//     for the whole function, callee-saved style — global register
//     allocation, the single biggest code-quality lever over a
//     single-pass baseline, which must dump state at every merge;
//  2. code generation (sharing the abstract-interpretation back end);
//  3. one or more local-value-numbering passes over the emitted machine
//     code that delete redundant slot loads, redundant spills, and
//     re-materialized constants, with full branch-target remapping.
//
// Each pass costs real compile time, so opt tiers land where the paper
// puts them: ~2-3x faster code at an order of magnitude slower setup.
package opt

import (
	"wizgo/internal/engine"
	"wizgo/internal/mach"
	"wizgo/internal/rt"
	"wizgo/internal/spc"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// Config selects the pipeline weight.
type Config struct {
	// PinLocals is the number of locals pinned to dedicated registers.
	PinLocals int
	// Passes is how many LVN clean-up passes run (heavier tiers run
	// more, modeling longer optimization pipelines).
	Passes int
	// Stackmaps emits call-site reference maps (Web-engine style).
	Stackmaps bool
}

// Default returns the standard optimizing configuration.
func Default() Config { return Config{PinLocals: 16, Passes: 1} }

// Compile runs the full pipeline on one function.
func Compile(m *wasm.Module, fidx uint32, decl *wasm.Func, info *validate.FuncInfo,
	probes *rt.ProbeSet, cfg Config) (*mach.Code, error) {

	scfg := spc.Config{
		TrackConsts: true, ConstFold: true, ISel: true, MultiReg: true,
		Peephole: true, Tags: rt.TagsNone, Stackmaps: cfg.Stackmaps,
		PinLocals: cfg.PinLocals,
	}
	code, err := spc.Compile(m, fidx, decl, info, probes, scfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Passes; i++ {
		code = LVN(code)
	}
	return code, nil
}

// Tier adapts the optimizing compiler for the engine.
type Tier struct {
	TierName string
	Cfg      Config
}

// Name implements engine.Tier.
func (t Tier) Name() string { return t.TierName }

// Compile implements engine.Tier.
func (t Tier) Compile(m *wasm.Module, fidx uint32, decl *wasm.Func,
	info *validate.FuncInfo, probes *rt.ProbeSet) (engine.Code, error) {
	return Compile(m, fidx, decl, info, probes, t.Cfg)
}
