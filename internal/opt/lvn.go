package opt

import "wizgo/internal/mach"

// LVN performs local value numbering over emitted machine code: within
// each extended block (boundaries are branch targets and observation
// points) it tracks which register currently mirrors each value-stack
// slot and which constants registers hold, then deletes
//
//   - slot loads whose destination register already holds the slot value,
//   - slot stores that would rewrite an identical value, and
//   - constant loads into a register already holding that constant,
//
// remapping every branch target, table entry and OSR entry across the
// deletions. The pass is conservative: any instruction it does not
// understand invalidates all tracked state.
func LVN(c *mach.Code) *mach.Code {
	n := len(c.Instrs)
	isTarget := make([]bool, n+1)
	for _, in := range c.Instrs {
		if branchTarget(in.Op) {
			if t := int(in.Imm); t <= n {
				isTarget[t] = true
			}
		}
	}
	for _, tab := range c.Tables {
		for _, t := range tab {
			if int(t) <= n {
				isTarget[t] = true
			}
		}
	}
	for _, t := range c.OSREntries {
		if t <= n {
			isTarget[t] = true
		}
	}

	keep := make([]bool, n)
	nslots := c.NumSlots + 8
	slotReg := make([]int32, nslots) // slot -> reg+1 known to mirror it (0 = unknown)
	var regConst [mach.NumRegs]struct {
		known bool
		val   uint64
	}
	resetAll := func() {
		for i := range slotReg {
			slotReg[i] = 0
		}
		for i := range regConst {
			regConst[i].known = false
		}
	}
	clobberReg := func(r int32) {
		for s := 0; s < nslots; s++ {
			if slotReg[s] == r+1 {
				slotReg[s] = 0
			}
		}
		regConst[r].known = false
	}
	resetAll()

	for pc := 0; pc < n; pc++ {
		if isTarget[pc] {
			resetAll()
		}
		in := &c.Instrs[pc]
		keep[pc] = true
		switch in.Op {
		case mach.OLoadSlot:
			s := int(in.Imm)
			if s < nslots && slotReg[s] != 0 && !regConst[in.A].known {
				if slotReg[s] == in.A+1 {
					keep[pc] = false // register already mirrors the slot
					continue
				}
				// Another register mirrors the slot: forward it with a
				// move instead of touching memory (load forwarding).
				src := slotReg[s] - 1
				clobberReg(in.A)
				in.Op = mach.OMov
				in.B = src
				in.Imm = 0
				slotReg[s] = in.A + 1
				continue
			}
			clobberReg(in.A)
			if s < nslots {
				slotReg[s] = in.A + 1
			}
		case mach.OStoreSlot:
			s := int(in.Imm)
			if s < nslots {
				if slotReg[s] == in.B+1 {
					keep[pc] = false // slot already holds this value
					continue
				}
				slotReg[s] = in.B + 1
			}
		case mach.OStoreSlotConst, mach.OStoreTag:
			if in.Op == mach.OStoreSlotConst {
				s := int(in.A)
				if s < nslots {
					slotReg[s] = 0
				}
			}
		case mach.OConst:
			if regConst[in.A].known && regConst[in.A].val == in.Imm {
				keep[pc] = false
				continue
			}
			clobberReg(in.A)
			regConst[in.A].known = true
			regConst[in.A].val = in.Imm
		case mach.OMov:
			if in.A == in.B {
				keep[pc] = false
				continue
			}
			clobberReg(in.A)
		case mach.OCall, mach.OCallIndirect:
			// Callee frames live above the argument base: slots at or
			// beyond it change; lower slots and caller registers
			// survive (per-frame register files, callee-saved model).
			for s := int(in.B); s < nslots; s++ {
				slotReg[s] = 0
			}
		case mach.OProbeFire, mach.OProbeTos, mach.OProbeCounter, mach.OCheckPoint:
			resetAll()
		case mach.OJump, mach.OBrTable, mach.OReturn, mach.OTrap, mach.OUnreachable:
			// Control leaves; following code (if any) starts a block.
			resetAll()
		default:
			if branchTarget(in.Op) {
				// Conditional branch: fall-through state survives, but
				// registers written by nothing — no-op.
				continue
			}
			if writesA(in.Op) {
				clobberReg(in.A)
			}
		}
	}

	// Remap.
	newPC := make([]int32, n+1)
	cnt := int32(0)
	for i := 0; i < n; i++ {
		newPC[i] = cnt
		if keep[i] {
			cnt++
		}
	}
	newPC[n] = cnt

	out := &mach.Code{
		FuncIdx:    c.FuncIdx,
		Name:       c.Name,
		Instrs:     make([]mach.Instr, 0, cnt),
		WasmPC:     make([]int32, 0, cnt),
		OSREntries: make(map[int]int, len(c.OSREntries)),
		Tables:     make([][]int32, len(c.Tables)),
		Counters:   c.Counters,
		TosProbes:  c.TosProbes,
		Stackmaps:  c.Stackmaps,
		NumSlots:   c.NumSlots,
		NumResults: c.NumResults,
		NumParams:  c.NumParams,
		LocalTypes: c.LocalTypes,
	}
	for i := 0; i < n; i++ {
		if !keep[i] {
			continue
		}
		in := c.Instrs[i]
		if branchTarget(in.Op) {
			in.Imm = uint64(newPC[in.Imm])
		}
		out.Instrs = append(out.Instrs, in)
		out.WasmPC = append(out.WasmPC, c.WasmPC[i])
	}
	for ti, tab := range c.Tables {
		nt := make([]int32, len(tab))
		for i, t := range tab {
			nt[i] = newPC[t]
		}
		out.Tables[ti] = nt
	}
	for wpc, mpc := range c.OSREntries {
		out.OSREntries[wpc] = int(newPC[mpc])
	}
	out.CodeBytes = len(out.Instrs) * 4
	return out
}

// branchTarget reports whether the instruction's Imm is a machine pc.
func branchTarget(op mach.Op) bool {
	switch op {
	case mach.OJump, mach.OBrIfZero, mach.OBrIfNonZero,
		mach.OBrI32Eq, mach.OBrI32Ne, mach.OBrI32LtS, mach.OBrI32LtU,
		mach.OBrI32GtS, mach.OBrI32GtU, mach.OBrI32LeS, mach.OBrI32LeU,
		mach.OBrI32GeS, mach.OBrI32GeU,
		mach.OBrI32EqImm, mach.OBrI32NeImm, mach.OBrI32LtSImm, mach.OBrI32LtUImm,
		mach.OBrI32GtSImm, mach.OBrI32GtUImm, mach.OBrI32LeSImm, mach.OBrI32LeUImm,
		mach.OBrI32GeSImm, mach.OBrI32GeUImm,
		mach.OBrI64Eq, mach.OBrI64Ne, mach.OBrI64LtS, mach.OBrI64LtU,
		mach.OBrI64GtS, mach.OBrI64GtU, mach.OBrI64LeS, mach.OBrI64LeU,
		mach.OBrI64GeS, mach.OBrI64GeU:
		return true
	}
	return false
}

// writesA reports whether the instruction writes register A.
func writesA(op mach.Op) bool {
	switch op {
	case mach.ONop, mach.OStoreSlot, mach.OStoreSlotConst, mach.OStoreTag,
		mach.OSt8, mach.OSt16, mach.OSt32, mach.OSt64,
		mach.OGlobalSet, mach.OReturn, mach.OTrap, mach.OUnreachable,
		mach.OCall, mach.OCallIndirect, mach.OMemCopy, mach.OMemFill,
		mach.OFuelPrepay: // A is a trip count, not a register
		return false
	}
	return true
}
