package opt_test

import (
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/mach"
	"wizgo/internal/opt"
	"wizgo/internal/rt"
	"wizgo/internal/spc"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// buildRedundant compiles a function whose template-quality code has
// obvious redundant loads for LVN to remove.
func buildRedundant(t *testing.T) (*mach.Code, *wasm.Module, *validate.FuncInfo) {
	t.Helper()
	b := wasm.NewBuilder()
	b.AddMemory(1, 1)
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	f := b.NewFunc("f", ft)
	// x*x + x*x: the second x*x reloads everything without LVN-level help.
	f.LocalGet(0).LocalGet(0).Op(wasm.OpI32Mul)
	f.LocalGet(0).LocalGet(0).Op(wasm.OpI32Mul)
	f.Op(wasm.OpI32Add)
	f.End()
	m := b.Module()
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatal(err)
	}
	// Compile with a weak config (no MR) to create redundancy.
	cfg := spc.Config{TrackConsts: true}
	code, err := spc.Compile(m, 0, &m.Funcs[0], &infos[0], nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return code, m, &infos[0]
}

func run(t *testing.T, code *mach.Code, arg uint64) uint64 {
	t.Helper()
	ctx := &rt.Context{
		Stack:    rt.NewValueStack(256, false),
		Inst:     &rt.Instance{Memory: &rt.Memory{}},
		MaxDepth: 16,
	}
	ctx.Stack.Slots[0] = arg
	if _, err := code.Run(ctx, &rt.FuncInst{}, 0); err != nil {
		t.Fatal(err)
	}
	return ctx.Stack.Slots[0]
}

func TestLVNForwardsRedundantLoads(t *testing.T) {
	code, _, _ := buildRedundant(t)
	loadsBefore := countOp(code, mach.OLoadSlot)
	want := run(t, code, 6)

	optimized := opt.LVN(code)
	loadsAfter := countOp(optimized, mach.OLoadSlot)
	if loadsAfter >= loadsBefore {
		t.Errorf("LVN did not forward loads: %d -> %d\n%s",
			loadsBefore, loadsAfter, optimized.Disassemble())
	}
	if got := run(t, optimized, 6); got != want {
		t.Errorf("LVN changed semantics: %d != %d", got, want)
	}
	if want != 72 {
		t.Errorf("6*6+6*6 = %d, want 72", want)
	}
}

func countOp(code *mach.Code, op mach.Op) int {
	n := 0
	for _, in := range code.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestLVNIdempotent(t *testing.T) {
	code, _, _ := buildRedundant(t)
	once := opt.LVN(code)
	twice := opt.LVN(once)
	if len(twice.Instrs) != len(once.Instrs) {
		t.Errorf("second LVN pass changed size: %d -> %d", len(once.Instrs), len(twice.Instrs))
	}
}

func TestLVNRemapsBranches(t *testing.T) {
	b := wasm.NewBuilder()
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	f := b.NewFunc("f", ft)
	acc := f.AddLocal(wasm.I32)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(acc).LocalGet(0).Op(wasm.OpI32Add).LocalSet(acc)
	f.LocalGet(0).I32Const(1).Op(wasm.OpI32Sub).LocalTee(0)
	f.I32Const(0).Op(wasm.OpI32GtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	m := b.Module()
	infos, err := validate.Module(m)
	if err != nil {
		t.Fatal(err)
	}
	code, err := opt.Compile(m, 0, &m.Funcs[0], &infos[0], nil, opt.Config{PinLocals: 4, Passes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := run(t, code, 10); got != 55 {
		t.Errorf("sum 1..10 = %d, want 55", got)
	}
}

// TestOptBeatsBaselineOnInstructionCount: the optimizing pipeline should
// emit meaningfully fewer loop-body instructions than the baseline.
func TestOptBeatsBaseline(t *testing.T) {
	b := wasm.NewBuilder()
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I64}, Results: []wasm.ValueType{wasm.I64}}
	f := b.NewFunc("f", ft)
	acc := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I64)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(acc).LocalGet(i).Op(wasm.OpI64Add).LocalSet(acc)
	f.LocalGet(i).I64Const(1).Op(wasm.OpI64Add).LocalTee(i)
	f.LocalGet(0).Op(wasm.OpI64LtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	m := b.Module()
	infos, _ := validate.Module(m)

	base, err := spc.Compile(m, 0, &m.Funcs[0], &infos[0], nil, spc.Wizard())
	if err != nil {
		t.Fatal(err)
	}
	optd, err := opt.Compile(m, 0, &m.Funcs[0], &infos[0], nil, opt.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(optd.Instrs) >= len(base.Instrs) {
		t.Errorf("opt (%d instrs) should beat baseline (%d instrs)\nbase:\n%s\nopt:\n%s",
			len(optd.Instrs), len(base.Instrs), base.Disassemble(), optd.Disassemble())
	}
}

// TestOptEndToEnd runs a full engine with the optimizing tier.
func TestOptEndToEnd(t *testing.T) {
	b := wasm.NewBuilder()
	ft := wasm.FuncType{Params: []wasm.ValueType{wasm.I64}, Results: []wasm.ValueType{wasm.I64}}
	f := b.NewFunc("tri", ft)
	acc := f.AddLocal(wasm.I64)
	i := f.AddLocal(wasm.I64)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(i).I64Const(1).Op(wasm.OpI64Add).LocalTee(i)
	f.LocalGet(acc).Op(wasm.OpI64Add).LocalSet(acc)
	f.LocalGet(i).LocalGet(0).Op(wasm.OpI64LtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	b.Export("tri", f.Idx)
	bytes := b.Encode()

	for _, cfg := range []engine.Config{
		engines.TurboFanLike(), engines.WAVMLike(), engines.IWasmFJITLike(),
		engines.JSCBBQLike(),
	} {
		inst, err := engine.New(cfg, nil).Instantiate(bytes)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		got, err := inst.Call("tri", wasm.ValI64(1000))
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if got[0].I64() != 500500 {
			t.Errorf("%s: got %d, want 500500", cfg.Name, got[0].I64())
		}
	}
}
