// Package codecache is a sharded, content-addressed cache for compiled
// module artifacts. It exists so a serving deployment can amortize the
// per-module setup cost the paper's Figure 8 measures: decode, validate
// and per-function compilation happen once per distinct (module bytes,
// engine configuration) pair, and every subsequent instantiation pays
// only the link cost.
//
// The cache is safe for concurrent use. Keys are the SHA-256 of the
// module bytes combined with an engine-configuration fingerprint, so two
// presets that would emit different code never share an artifact. The
// key space is split across power-of-two shards, each with its own
// mutex, so compile-heavy and lookup-heavy goroutines contend only
// per-shard. Concurrent misses on the same key are collapsed into one
// compilation (single-flight): the losers block until the winner's
// artifact is published and then share it.
//
// Below the shards sits an optional persistent tier (DiskStore): memory
// misses load serialized artifacts from a cache directory — verified
// against a versioned, checksummed envelope — instead of compiling, so
// a freshly started process serves its first request with zero compiler
// invocations. Writes are crash-safe (O_EXCL temp + atomic rename) and
// single-flight across processes via lock files, so a fleet of
// restarting replicas compiles each module at most once.
package codecache

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"wizgo/internal/telemetry"
)

// Key identifies one cached artifact: a content hash plus the
// configuration fingerprint of the engine that compiled it.
type Key struct {
	Hash   [sha256.Size]byte
	Config string
}

// KeyFor builds the cache key for a module under a configuration
// fingerprint. The fingerprint must capture everything that changes the
// emitted code (tier, mode, compiler flags); engines derive it from
// their Config.
func KeyFor(moduleBytes []byte, config string) Key {
	return Key{Hash: sha256.Sum256(moduleBytes), Config: config}
}

// Stats are the cache's monotonic counters. Evictions counts entries
// dropped to capacity pressure, not explicit invalidation. The Disk*
// fields mirror the attached disk tier (zero when none is attached):
// DiskHits are misses of the memory tier served by loading a persisted
// artifact instead of compiling, and CorruptEvictions counts artifacts
// thrown away because verification or decoding failed.
type Stats struct {
	Hits, Misses, Evictions uint64

	DiskHits, DiskMisses, DiskWrites uint64
	CorruptEvictions                 uint64
}

// Options configures a Cache.
type Options struct {
	// Shards is rounded up to a power of two; 0 means 16.
	Shards int
	// Capacity bounds the total number of cached artifacts across all
	// shards; 0 means 256. When a shard exceeds its slice of the
	// capacity, its least-recently-used entry is evicted.
	Capacity int
}

// Cache is a sharded artifact cache. The zero value is not usable; call
// New.
type Cache struct {
	shards      []shard
	mask        uint64
	perShardCap int

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	clock     atomic.Uint64 // logical LRU clock, stamped on every touch

	// disk, when set, is the persistent tier below the shards: memory
	// misses consult it before building, and freshly built artifacts
	// spill to it (write-through). Demotion is implicit — an entry
	// evicted from a shard remains on disk and is promoted back on its
	// next miss.
	disk atomic.Pointer[DiskStore]
}

type shard struct {
	mu       sync.Mutex
	entries  map[Key]*entry
	inflight map[Key]*flight
}

type entry struct {
	value any
	used  uint64 // last-touch stamp from Cache.clock
}

type flight struct {
	wg    sync.WaitGroup
	value any
	err   error
}

// New creates a cache.
func New(opts Options) *Cache {
	n := opts.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = 256
	}
	perShard := (capacity + pow - 1) / pow
	if perShard < 1 {
		perShard = 1
	}
	c := &Cache{
		shards:      make([]shard, pow),
		mask:        uint64(pow - 1),
		perShardCap: perShard,
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[Key]*entry)
		c.shards[i].inflight = make(map[Key]*flight)
	}
	return c
}

// shardFor selects a shard from the leading key bytes. The hash is
// uniform, so the first 8 bytes are as good a shard index as any.
func (c *Cache) shardFor(k Key) *shard {
	idx := uint64(k.Hash[0]) | uint64(k.Hash[1])<<8 | uint64(k.Hash[2])<<16 |
		uint64(k.Hash[3])<<24 | uint64(k.Hash[4])<<32 | uint64(k.Hash[5])<<40 |
		uint64(k.Hash[6])<<48 | uint64(k.Hash[7])<<56
	// Fold the config fingerprint in so the same module under two
	// presets can land on different shards.
	for i := 0; i < len(k.Config); i++ {
		idx = idx*31 + uint64(k.Config[i])
	}
	return &c.shards[idx&c.mask]
}

// Get returns the cached artifact for k, if present.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.entries[k]
	if ok {
		e.used = c.clock.Add(1)
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
		mHits.Inc()
		return e.value, true
	}
	c.misses.Add(1)
	mMisses.Inc()
	return nil, false
}

// Put stores an artifact under k, evicting the shard's least-recently
// used entry if the shard is at capacity.
func (c *Cache) Put(k Key, v any) {
	s := c.shardFor(k)
	s.mu.Lock()
	c.putLocked(s, k, v)
	s.mu.Unlock()
}

func (c *Cache) putLocked(s *shard, k Key, v any) {
	if _, exists := s.entries[k]; !exists && len(s.entries) >= c.perShardCap {
		var victim Key
		oldest := uint64(1<<64 - 1)
		for kk, e := range s.entries {
			if e.used < oldest {
				oldest = e.used
				victim = kk
			}
		}
		delete(s.entries, victim)
		c.evictions.Add(1)
		mEvictions.Inc()
	}
	s.entries[k] = &entry{value: v, used: c.clock.Add(1)}
}

// SetDisk attaches (or, with nil, detaches) a persistent tier. Engines
// sharing one Cache share its disk tier; artifacts of different engine
// configurations cannot collide because the configuration fingerprint
// is part of every key.
func (c *Cache) SetDisk(d *DiskStore) { c.disk.Store(d) }

// Disk returns the attached persistent tier, or nil.
func (c *Cache) Disk() *DiskStore { return c.disk.Load() }

// TierOps supplies the build and (de)serialization callbacks for one
// tiered lookup. Encode and Decode translate between the live artifact
// and the disk payload; either may be nil, which confines the lookup to
// the memory tier. Decode must copy anything it retains — the payload
// may alias a memory-mapped file that is unmapped when Decode returns.
type TierOps struct {
	Build  func() (any, error)
	Encode func(v any) ([]byte, error)
	Decode func(payload []byte) (any, error)
}

// GetOrAdd returns the artifact for k, building it with build on a miss.
// Concurrent callers missing on the same key run build exactly once and
// share its result; a build error (or panic, converted to an error) is
// returned to every waiter and nothing is cached, so a later call
// retries.
func (c *Cache) GetOrAdd(k Key, build func() (any, error)) (any, error) {
	return c.GetOrAddTiered(k, TierOps{Build: build})
}

// GetOrAddTiered is GetOrAdd through the full cache hierarchy: memory
// shard, then (when a disk tier is attached and ops carries a codec)
// the persistent store, then ops.Build. Disk hits are promoted into the
// shard; fresh builds are written through to disk. Build remains
// single-flight in-process via the shard's flight table, and
// single-flight across processes via the store's lock files: of N
// processes missing on one key, one compiles and writes, the rest wait
// and load its artifact.
func (c *Cache) GetOrAddTiered(k Key, ops TierOps) (v any, err error) {
	// The lifecycle tracer sees every lookup as a cache_mem span whose
	// outcome label distinguishes hit, collapsed wait, and miss. Timing
	// is gated on the tracer being enabled so the fast path never calls
	// time.Now.
	tracer := telemetry.DefaultTracer()
	var t0 time.Time
	if tracer.Enabled() {
		t0 = time.Now()
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		e.used = c.clock.Add(1)
		s.mu.Unlock()
		c.hits.Add(1)
		mHits.Inc()
		if tracer.Enabled() {
			tracer.Record(telemetry.StageCacheMem, "hit", t0, time.Since(t0), "")
		}
		return e.value, nil
	}
	if fl, ok := s.inflight[k]; ok {
		s.mu.Unlock()
		c.hits.Add(1) // a collapsed miss costs one compile fleet-wide: count as hit
		mHits.Inc()
		fl.wg.Wait()
		if tracer.Enabled() {
			tracer.Record(telemetry.StageCacheMem, "collapsed", t0, time.Since(t0), errLabel(fl.err))
		}
		return fl.value, fl.err
	}
	fl := &flight{}
	fl.wg.Add(1)
	s.inflight[k] = fl
	s.mu.Unlock()
	c.misses.Add(1)
	mMisses.Inc()

	// The cleanup must run even if build panics (compiler bugs surface
	// as panics): a leaked inflight entry would block every future
	// compile of this key forever. The panic is converted into an error
	// so the caller and all collapsed waiters observe the same failure.
	defer func() {
		if r := recover(); r != nil {
			fl.value, fl.err = nil, fmt.Errorf("codecache: build panicked: %v", r)
		}
		s.mu.Lock()
		delete(s.inflight, k)
		if fl.err == nil {
			c.putLocked(s, k, fl.value)
		}
		s.mu.Unlock()
		fl.wg.Done()
		v, err = fl.value, fl.err
	}()
	fl.value, fl.err = c.buildTiered(k, ops)
	if tracer.Enabled() {
		tracer.Record(telemetry.StageCacheMem, "miss", t0, time.Since(t0), errLabel(fl.err))
	}
	return fl.value, fl.err
}

// errLabel renders an error as a span outcome label.
func errLabel(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// buildTiered resolves a memory miss against the disk tier, falling
// back to ops.Build. Every disk failure mode — absent, truncated,
// checksum or stamp mismatch, undecodable payload, stale lock — lands
// on the same recovery path: compile cleanly.
func (c *Cache) buildTiered(k Key, ops TierOps) (any, error) {
	d := c.disk.Load()
	if d == nil || ops.Decode == nil {
		return ops.Build()
	}
	if v, ok := c.loadFromDisk(d, k, ops); ok {
		return v, nil
	}
	// Disk miss: race (via the lock file) to be the one process that
	// compiles and publishes this artifact.
	unlock, acquired := d.TryLock(k)
	if !acquired {
		// Another process is compiling this very module; waiting for
		// its artifact costs less than a duplicate compile. If the wait
		// fails (writer crashed, timed out, wrote garbage) we compile
		// independently — without writing, preserving the exactly-one-
		// write property.
		if payload, done, ok := d.WaitForArtifact(k); ok {
			v, derr := ops.Decode(payload)
			done()
			if derr == nil {
				return v, nil
			}
			d.EvictCorrupt(k)
		}
		return ops.Build()
	}
	defer unlock()
	v, err := ops.Build()
	if err == nil && ops.Encode != nil {
		// A module whose code the codec cannot serialize (or a disk
		// that refuses the write) degrades to memory-only caching;
		// spill failures must never fail the compile itself.
		if payload, eerr := ops.Encode(v); eerr == nil {
			_ = d.Store(k, payload)
		}
	}
	return v, err
}

// loadFromDisk loads, verifies and decodes the artifact for k,
// promoting nothing itself — the caller's flight cleanup publishes the
// value into the memory shard.
func (c *Cache) loadFromDisk(d *DiskStore, k Key, ops TierOps) (any, bool) {
	tracer := telemetry.DefaultTracer()
	var t0 time.Time
	if tracer.Enabled() {
		t0 = time.Now()
		defer func() { tracer.Record(telemetry.StageCacheDisk, "load", t0, time.Since(t0), "") }()
	}
	payload, done, ok := d.Load(k)
	if !ok {
		return nil, false
	}
	v, err := ops.Decode(payload)
	done()
	if err != nil {
		// The envelope verified but the payload did not decode: a
		// format drift the stamp failed to capture. Evict so the next
		// cold start goes straight to a clean compile.
		d.EvictCorrupt(k)
		return nil, false
	}
	return v, true
}

// Invalidate drops the artifact for k, reporting whether it was present.
func (c *Cache) Invalidate(k Key) bool {
	s := c.shardFor(k)
	s.mu.Lock()
	_, ok := s.entries[k]
	delete(s.entries, k)
	s.mu.Unlock()
	return ok
}

// Len returns the number of cached artifacts.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats returns a snapshot of the counters, merging the attached disk
// tier's (if any) into the Disk* fields.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	if d := c.disk.Load(); d != nil {
		ds := d.Stats()
		st.DiskHits = ds.Hits
		st.DiskMisses = ds.Misses
		st.DiskWrites = ds.Writes
		st.CorruptEvictions = ds.CorruptEvictions
	}
	return st
}
