package codecache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"wizgo/internal/faultinject"
	"wizgo/internal/wbin"
)

// Fault-injection points of the disk tier. Each simulates a failure the
// envelope design must degrade through without an error reaching the
// caller: Load's contract is "a bad artifact is a miss", so every one of
// these must end in a recompile, never a crash or a poisoned cache.
var (
	// PointDiskMap simulates an mmap/read failure of an existing
	// artifact file (EIO, EACCES): Load must report a plain miss.
	PointDiskMap = faultinject.Register("codecache.disk.mmap")
	// PointDiskShortRead simulates a truncated artifact (crashed writer,
	// torn copy): verification must fail and evict it.
	PointDiskShortRead = faultinject.Register("codecache.disk.shortread")
	// PointDiskChecksum simulates bit rot in the artifact body: the
	// checksum must catch it and evict.
	PointDiskChecksum = faultinject.Register("codecache.disk.checksum")
	// PointDiskStaleLock forces TryLock's stale-lock judgment: a held
	// lock is treated as abandoned and broken, the crashed-writer
	// recovery path.
	PointDiskStaleLock = faultinject.Register("codecache.disk.stalelock")
)

// The on-disk artifact envelope. Everything the in-memory tier trusts
// implicitly — that an artifact was produced by this compiler revision
// for this ISA from exactly these module bytes — must be verifiable
// before a single payload byte is interpreted, because cache
// directories survive binary upgrades, partial writes and bit rot.
//
//	offset 0   magic "WZGC"
//	           u32    format version
//	           string ISA
//	           string compiler revision
//	           [32]   module content hash (SHA-256)
//	           string engine configuration fingerprint
//	           uvar   payload length, payload bytes
//	  tail     [32]   SHA-256 checksum of everything above
const (
	diskMagic         = "WZGC"
	diskFormatVersion = 1
	artifactExt       = ".wzc"
	lockExt           = ".lock"
)

// Stamp identifies the producer of an artifact. An artifact whose stamp
// does not match the store's is unusable (a different instruction set
// or a compiler whose output format or semantics changed) and is
// treated exactly like corruption: evicted and recompiled.
type Stamp struct {
	// ISA names the target instruction set of the emitted code.
	ISA string
	// CompilerRevision changes whenever compiled output changes shape or
	// meaning; internal/engine owns the constant.
	CompilerRevision string
}

// DiskOptions configures a DiskStore.
type DiskOptions struct {
	// Stamp is the producer identity stamped into (and required of)
	// every artifact.
	Stamp Stamp
	// StaleLockAfter is the age past which another process's lock file
	// is presumed abandoned (its owner crashed mid-compile) and broken.
	// 0 means 2 minutes.
	StaleLockAfter time.Duration
	// WaitTimeout bounds how long a process that lost the write race
	// waits for the winner's artifact to appear before compiling
	// independently. 0 means 10 seconds.
	WaitTimeout time.Duration
	// WaitPoll is the polling interval while waiting. 0 means 2ms.
	WaitPoll time.Duration
}

// DiskStats are the disk tier's monotonic counters.
type DiskStats struct {
	// Hits and Misses count Load outcomes; a hit means a verified
	// artifact was returned.
	Hits, Misses uint64
	// Writes counts artifacts durably published (temp file + rename).
	Writes uint64
	// CorruptEvictions counts artifacts (or stale lock files) removed
	// because verification failed: truncation, checksum mismatch,
	// version/ISA/compiler-revision mismatch, or undecodable payload.
	CorruptEvictions uint64
	// WaitHits counts Loads satisfied by waiting out another process's
	// in-flight write instead of compiling.
	WaitHits uint64
}

// DiskStore is the persistent tier below the in-memory Cache: artifacts
// spill to a directory keyed by the same content hash the shards use,
// survive process restarts, and load back without running the compiler.
// All methods are safe for concurrent use by any number of goroutines
// and processes sharing the directory.
type DiskStore struct {
	dir  string
	opts DiskOptions

	hits     atomic.Uint64
	misses   atomic.Uint64
	writes   atomic.Uint64
	corrupt  atomic.Uint64
	waitHits atomic.Uint64
}

// OpenDisk opens (creating if needed) an artifact store rooted at dir.
func OpenDisk(dir string, opts DiskOptions) (*DiskStore, error) {
	if opts.StaleLockAfter <= 0 {
		opts.StaleLockAfter = 2 * time.Minute
	}
	if opts.WaitTimeout <= 0 {
		opts.WaitTimeout = 10 * time.Second
	}
	if opts.WaitPoll <= 0 {
		opts.WaitPoll = 2 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("codecache: opening disk store: %w", err)
	}
	return &DiskStore{dir: dir, opts: opts}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// fileName derives the artifact file name for a key: the module content
// hash plus a digest of the configuration fingerprint, so one module
// compiled under two presets yields two artifacts.
func (d *DiskStore) fileName(k Key) string {
	cfg := sha256.Sum256([]byte(k.Config))
	return hex.EncodeToString(k.Hash[:20]) + "-" + hex.EncodeToString(cfg[:8]) + artifactExt
}

func (d *DiskStore) path(k Key) string     { return filepath.Join(d.dir, d.fileName(k)) }
func (d *DiskStore) lockPath(k Key) string { return d.path(k) + lockExt }

// Load returns the verified payload of the artifact for k, if present.
// The payload may alias an mmap'd region: the caller must finish with
// it (copying anything retained) and then call done. A missing artifact
// is a miss; an artifact that fails any verification step is evicted,
// counted, and reported as a miss — corruption is never an error here,
// because the caller's fallback (recompile) is always available.
func (d *DiskStore) Load(k Key) (payload []byte, done func(), ok bool) {
	data, unmap, err := mapFile(d.path(k))
	if err == nil {
		if ferr := faultinject.Fire(PointDiskMap); ferr != nil {
			unmap()
			data, unmap, err = nil, nil, ferr
		}
	}
	if err != nil {
		// ENOENT is the common cold-cache case; anything else (EACCES,
		// EIO) equally means "no usable artifact".
		d.misses.Add(1)
		mDiskMisses.Inc()
		return nil, nil, false
	}
	if faultinject.Fire(PointDiskShortRead) != nil {
		data = data[:len(data)/2]
	}
	if faultinject.Fire(PointDiskChecksum) != nil && len(data) > 0 {
		// The mapping may be read-only; corrupt a copy.
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)-1] ^= 0x01
		data = flipped
	}
	payload, err = d.verify(k, data)
	if err != nil {
		unmap()
		d.evictCorrupt(k)
		d.misses.Add(1)
		mDiskMisses.Inc()
		return nil, nil, false
	}
	d.hits.Add(1)
	mDiskHits.Inc()
	return payload, unmap, true
}

// verify checks the envelope of raw artifact bytes against the store's
// stamp and the requested key, returning the payload on success.
func (d *DiskStore) verify(k Key, data []byte) ([]byte, error) {
	if len(data) < len(diskMagic)+sha256.Size {
		return nil, fmt.Errorf("codecache: artifact truncated: %d bytes", len(data))
	}
	body, tail := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(tail) {
		return nil, errors.New("codecache: artifact checksum mismatch")
	}
	r := wbin.NewReader(body)
	if string(r.Raw(len(diskMagic))) != diskMagic {
		return nil, errors.New("codecache: bad artifact magic")
	}
	if v := r.U32(); v != diskFormatVersion {
		return nil, fmt.Errorf("codecache: artifact format version %d, want %d", v, diskFormatVersion)
	}
	if isa := r.String(); isa != d.opts.Stamp.ISA {
		return nil, fmt.Errorf("codecache: artifact ISA %q, store requires %q", isa, d.opts.Stamp.ISA)
	}
	if rev := r.String(); rev != d.opts.Stamp.CompilerRevision {
		return nil, fmt.Errorf("codecache: artifact compiler revision %q, store requires %q", rev, d.opts.Stamp.CompilerRevision)
	}
	if hash := r.Raw(sha256.Size); string(hash) != string(k.Hash[:]) {
		return nil, errors.New("codecache: artifact content hash mismatch")
	}
	if cfg := r.String(); cfg != k.Config {
		return nil, errors.New("codecache: artifact configuration fingerprint mismatch")
	}
	n := r.Length()
	if r.Err() != nil {
		return nil, r.Err()
	}
	payload := body[len(body)-r.Remaining():]
	if len(payload) != n {
		return nil, fmt.Errorf("codecache: payload length %d, header says %d", len(payload), n)
	}
	return payload, nil
}

// Store durably publishes an artifact for k. The write is crash-safe:
// the envelope is assembled in an O_EXCL temp file in the same
// directory and atomically renamed into place, so readers only ever
// observe a complete artifact. If the artifact already exists the write
// is skipped — content-addressed artifacts for one key are identical.
func (d *DiskStore) Store(k Key, payload []byte) error {
	final := d.path(k)
	if _, err := os.Stat(final); err == nil {
		return nil
	}

	w := wbin.NewWriter(len(payload) + 256)
	w.Raw([]byte(diskMagic))
	w.U32(diskFormatVersion)
	w.String(d.opts.Stamp.ISA)
	w.String(d.opts.Stamp.CompilerRevision)
	w.Raw(k.Hash[:])
	w.String(k.Config)
	w.Uvarint(uint64(len(payload)))
	w.Raw(payload)
	sum := sha256.Sum256(w.Bytes())
	w.Raw(sum[:])

	// CreateTemp opens with O_EXCL under a random suffix, so a crashed
	// writer's leftover temp never blocks a retry; leftovers are garbage
	// in the cache dir, not corruption.
	tmp, err := os.CreateTemp(d.dir, d.fileName(k)+".tmp*")
	if err != nil {
		return fmt.Errorf("codecache: writing artifact: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(w.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("codecache: writing artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("codecache: writing artifact: %w", err)
	}
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("codecache: publishing artifact: %w", err)
	}
	d.writes.Add(1)
	mDiskWrites.Inc()
	return nil
}

// evictCorrupt removes an unusable artifact so the next Load is a clean
// miss instead of re-verifying the same bad bytes forever.
func (d *DiskStore) evictCorrupt(k Key) {
	if err := os.Remove(d.path(k)); err == nil || errors.Is(err, fs.ErrNotExist) {
		d.corrupt.Add(1)
		mDiskCorrupt.Inc()
	}
}

// EvictCorrupt removes the artifact for k after a payload-level decode
// failure (the envelope verified but the contents did not make sense to
// the consumer). Exposed for the cache layer.
func (d *DiskStore) EvictCorrupt(k Key) { d.evictCorrupt(k) }

// TryLock attempts to become the single cross-process writer for k via
// an O_EXCL lock file. On success it returns acquired=true and an
// unlock function. A lock older than StaleLockAfter is presumed
// abandoned (crashed writer), broken, and re-acquired.
func (d *DiskStore) TryLock(k Key) (unlock func(), acquired bool) {
	lp := d.lockPath(k)
	for attempt := 0; attempt < 2; attempt++ {
		f, err := os.OpenFile(lp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			// The pid is advisory, for humans inspecting a wedged dir.
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(lp) }, true
		}
		st, serr := os.Stat(lp)
		if serr != nil {
			// Lock vanished between OpenFile and Stat: retry once.
			continue
		}
		stale := time.Since(st.ModTime()) > d.opts.StaleLockAfter
		if faultinject.Fire(PointDiskStaleLock) != nil {
			stale = true
		}
		if stale {
			// Abandoned lock: its owner died mid-compile. Breaking it is
			// an eviction of corrupt state, counted as such.
			os.Remove(lp)
			d.corrupt.Add(1)
			mDiskCorrupt.Inc()
			continue
		}
		return nil, false
	}
	return nil, false
}

// WaitForArtifact blocks (bounded by WaitTimeout) for another process's
// in-flight write of k to land, then loads it. It returns early when
// the writer's lock disappears without an artifact — the writer failed,
// and the caller should compile independently.
func (d *DiskStore) WaitForArtifact(k Key) (payload []byte, done func(), ok bool) {
	deadline := time.Now().Add(d.opts.WaitTimeout)
	for {
		if _, err := os.Stat(d.path(k)); err == nil {
			if payload, done, ok = d.Load(k); ok {
				d.waitHits.Add(1)
				return payload, done, true
			}
			return nil, nil, false
		}
		if _, err := os.Stat(d.lockPath(k)); err != nil {
			// No artifact and no lock: the writer gave up (compile
			// error) or crashed after we saw its lock.
			return nil, nil, false
		}
		if time.Now().After(deadline) {
			return nil, nil, false
		}
		time.Sleep(d.opts.WaitPoll)
	}
}

// readFile is the portable load path behind mapFile.
func readFile(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

// Stats returns a snapshot of the disk tier's counters.
func (d *DiskStore) Stats() DiskStats {
	return DiskStats{
		Hits:             d.hits.Load(),
		Misses:           d.misses.Load(),
		Writes:           d.writes.Load(),
		CorruptEvictions: d.corrupt.Load(),
		WaitHits:         d.waitHits.Load(),
	}
}

// Len returns the number of artifacts currently on disk.
func (d *DiskStore) Len() int {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) == artifactExt {
			n++
		}
	}
	return n
}
