package codecache

import "wizgo/internal/telemetry"

// Process-wide mirrors of the cache counters. Every Cache in the
// process folds into these series (registration is idempotent), which
// is what makes the /metrics view deployment-level: per-cache detail
// stays available through Cache.Stats. The increments ride the same
// code paths as the local atomics, so the two views never drift.
var (
	mHits = telemetry.Default().Counter("wizgo_cache_hits_total",
		"Memory-tier code cache hits (collapsed in-flight misses included).")
	mMisses = telemetry.Default().Counter("wizgo_cache_misses_total",
		"Memory-tier code cache misses that went to the disk tier or a build.")
	mEvictions = telemetry.Default().Counter("wizgo_cache_evictions_total",
		"Code cache entries evicted to capacity pressure.")

	mDiskHits = telemetry.Default().Counter("wizgo_cache_disk_hits_total",
		"Disk-tier hits: artifacts rehydrated instead of compiled.")
	mDiskMisses = telemetry.Default().Counter("wizgo_cache_disk_misses_total",
		"Disk-tier misses that fell through to a fresh compile.")
	mDiskWrites = telemetry.Default().Counter("wizgo_cache_disk_writes_total",
		"Artifacts written through to the disk tier.")
	mDiskCorrupt = telemetry.Default().Counter("wizgo_cache_disk_corrupt_evictions_total",
		"Disk artifacts evicted because verification or decoding failed.")
)
