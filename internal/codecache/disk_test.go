package codecache_test

import (
	"bytes"
	"crypto/sha256"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wizgo/internal/codecache"
	"wizgo/internal/wbin"
)

var testStamp = codecache.Stamp{ISA: "test/isa", CompilerRevision: "rev-1"}

func newDisk(t *testing.T, dir string, opts codecache.DiskOptions) *codecache.DiskStore {
	t.Helper()
	d, err := codecache.OpenDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// artifactPath returns the single .wzc file in dir; corruption tests
// mutate it in place to simulate bit rot and partial writes.
func artifactPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.wzc"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one artifact in %s, got %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

func loadExpectMiss(t *testing.T, d *codecache.DiskStore, k codecache.Key, why string) {
	t.Helper()
	if _, done, ok := d.Load(k); ok {
		done()
		t.Fatalf("%s: Load succeeded on an unusable artifact", why)
	}
}

func TestDiskStoreLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
	k := codecache.KeyFor([]byte("module"), "cfg")
	payload := []byte("serialized artifact payload")

	if err := d.Store(k, payload); err != nil {
		t.Fatal(err)
	}
	// Re-storing an existing key is a no-op: content-addressed artifacts
	// for one key are identical, so the second write is skipped.
	if err := d.Store(k, payload); err != nil {
		t.Fatal(err)
	}

	got, done, ok := d.Load(k)
	if !ok {
		t.Fatal("Load missed a just-stored artifact")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	done()

	st := d.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 0 || st.CorruptEvictions != 0 {
		t.Errorf("stats = %+v, want 1 write, 1 hit", st)
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d, want 1", d.Len())
	}
}

func TestDiskLoadEmptyDirIsMiss(t *testing.T) {
	d := newDisk(t, t.TempDir(), codecache.DiskOptions{Stamp: testStamp})
	k := codecache.KeyFor([]byte("never stored"), "cfg")
	loadExpectMiss(t, d, k, "empty dir")
	st := d.Stats()
	if st.Misses != 1 || st.CorruptEvictions != 0 {
		t.Errorf("stats = %+v, want a plain miss and no evictions", st)
	}
}

// TestDiskCorruptionRecovery is the bit-rot matrix: every way an
// artifact file can go bad must land on the same recovery path — the
// load reports a miss, the bad file is evicted and counted, and the
// next load is a clean (uncounted-as-corrupt) miss. Nothing panics.
func TestDiskCorruptionRecovery(t *testing.T) {
	corruptions := []struct {
		name   string
		mutate func(t *testing.T, path string, data []byte)
	}{
		{"truncated-to-3-bytes", func(t *testing.T, path string, data []byte) {
			writeFile(t, path, data[:3])
		}},
		{"truncated-half", func(t *testing.T, path string, data []byte) {
			writeFile(t, path, data[:len(data)/2])
		}},
		{"truncated-one-byte-short", func(t *testing.T, path string, data []byte) {
			writeFile(t, path, data[:len(data)-1])
		}},
		{"empty-file", func(t *testing.T, path string, data []byte) {
			writeFile(t, path, nil)
		}},
		{"flipped-payload-byte", func(t *testing.T, path string, data []byte) {
			data[len(data)/2] ^= 0x40
			writeFile(t, path, data)
		}},
		{"flipped-checksum-byte", func(t *testing.T, path string, data []byte) {
			data[len(data)-1] ^= 0x01
			writeFile(t, path, data)
		}},
		{"flipped-magic-byte", func(t *testing.T, path string, data []byte) {
			// Envelope byte 0 with the trailing checksum recomputed, so
			// only the magic check can catch it.
			data[0] ^= 0x20
			writeFile(t, path, reseal(data))
		}},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			d := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
			k := codecache.KeyFor([]byte("module"), "cfg")
			if err := d.Store(k, []byte("payload bytes long enough to cut in half")); err != nil {
				t.Fatal(err)
			}
			path := artifactPath(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, path, data)

			loadExpectMiss(t, d, k, tc.name)
			st := d.Stats()
			if st.CorruptEvictions != 1 {
				t.Errorf("CorruptEvictions = %d, want 1", st.CorruptEvictions)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupt artifact not removed (stat err %v)", err)
			}
			// The eviction makes room for a clean republish.
			if err := d.Store(k, []byte("recompiled")); err != nil {
				t.Fatal(err)
			}
			if got, done, ok := d.Load(k); !ok || string(got) != "recompiled" {
				t.Errorf("reload after eviction: %q, %v", got, ok)
			} else {
				done()
			}
		})
	}
}

// TestDiskStampMismatch covers artifacts left behind by a different
// producer: a binary upgrade (compiler revision bump), a copied cache
// dir from another architecture (ISA), or a future format version.
// All are unusable and treated exactly like corruption.
func TestDiskStampMismatch(t *testing.T) {
	t.Run("compiler-revision", func(t *testing.T) {
		testStampVariant(t, codecache.Stamp{ISA: testStamp.ISA, CompilerRevision: "rev-2"})
	})
	t.Run("isa", func(t *testing.T) {
		testStampVariant(t, codecache.Stamp{ISA: "other/isa", CompilerRevision: testStamp.CompilerRevision})
	})
}

func testStampVariant(t *testing.T, readerStamp codecache.Stamp) {
	dir := t.TempDir()
	writer := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
	k := codecache.KeyFor([]byte("module"), "cfg")
	if err := writer.Store(k, []byte("old-producer payload")); err != nil {
		t.Fatal(err)
	}

	reader := newDisk(t, dir, codecache.DiskOptions{Stamp: readerStamp})
	loadExpectMiss(t, reader, k, "stamp mismatch")
	if st := reader.Stats(); st.CorruptEvictions != 1 {
		t.Errorf("CorruptEvictions = %d, want 1", st.CorruptEvictions)
	}
	if writer.Len() != 0 {
		t.Error("mismatched artifact not evicted from disk")
	}
}

func TestDiskFormatVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	d := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
	k := codecache.KeyFor([]byte("module"), "cfg")

	// Hand-craft an envelope from a hypothetical future format version,
	// resealed with a valid trailing checksum so only the version check
	// can reject it.
	w := wbin.NewWriter(128)
	w.Raw([]byte("WZGC"))
	w.U32(9999)
	w.String(testStamp.ISA)
	w.String(testStamp.CompilerRevision)
	w.Raw(k.Hash[:])
	w.String(k.Config)
	payload := []byte("future payload")
	w.Uvarint(uint64(len(payload)))
	w.Raw(payload)
	sum := sha256.Sum256(w.Bytes())
	w.Raw(sum[:])

	// Store a placeholder to learn the key's file name, then replace it.
	if err := d.Store(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	writeFile(t, artifactPath(t, dir), w.Bytes())

	loadExpectMiss(t, d, k, "format version")
	if st := d.Stats(); st.CorruptEvictions != 1 {
		t.Errorf("CorruptEvictions = %d, want 1", st.CorruptEvictions)
	}
}

func TestDiskStaleLockBroken(t *testing.T) {
	dir := t.TempDir()
	k := codecache.KeyFor([]byte("module"), "cfg")

	// A writer acquires the lock and "crashes" (never unlocks).
	crashed := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
	if _, acquired := crashed.TryLock(k); !acquired {
		t.Fatal("first TryLock did not acquire")
	}

	// While the lock is fresh, a second store must not acquire it.
	blocked := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
	if _, acquired := blocked.TryLock(k); acquired {
		t.Fatal("TryLock acquired a fresh lock held by another store")
	}

	// Past StaleLockAfter the lock is presumed abandoned: broken,
	// counted as a corrupt eviction, and re-acquired.
	breaker := newDisk(t, dir, codecache.DiskOptions{
		Stamp:          testStamp,
		StaleLockAfter: time.Millisecond,
	})
	time.Sleep(20 * time.Millisecond)
	unlock, acquired := breaker.TryLock(k)
	if !acquired {
		t.Fatal("TryLock did not break a stale lock")
	}
	unlock()
	if st := breaker.Stats(); st.CorruptEvictions != 1 {
		t.Errorf("CorruptEvictions = %d, want 1 (broken stale lock)", st.CorruptEvictions)
	}
}

// TestCacheRecompilesThroughCorruption drives corruption through the
// full tiered lookup: a cache whose disk tier holds a damaged artifact
// must fall back to a clean build, count the eviction, and republish —
// the caller never sees an error, let alone a panic.
func TestCacheRecompilesThroughCorruption(t *testing.T) {
	dir := t.TempDir()
	k := codecache.KeyFor([]byte("module"), "cfg")
	ops := func(builds *atomic.Int32, value string) codecache.TierOps {
		return codecache.TierOps{
			Build: func() (any, error) {
				builds.Add(1)
				return value, nil
			},
			Encode: func(v any) ([]byte, error) { return []byte(v.(string)), nil },
			Decode: func(p []byte) (any, error) { return string(p), nil },
		}
	}

	// Seed the dir through one cache.
	seedCache := codecache.New(codecache.Options{})
	seedCache.SetDisk(newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp}))
	var seedBuilds atomic.Int32
	if v, err := seedCache.GetOrAddTiered(k, ops(&seedBuilds, "seeded")); err != nil || v.(string) != "seeded" {
		t.Fatalf("seed: %v, %v", v, err)
	}

	// Bit-rot the artifact, then look it up from a fresh process
	// (new cache, new disk handle, same dir).
	path := artifactPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x80
	writeFile(t, path, data)

	coldCache := codecache.New(codecache.Options{})
	coldCache.SetDisk(newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp}))
	var coldBuilds atomic.Int32
	v, err := coldCache.GetOrAddTiered(k, ops(&coldBuilds, "recompiled"))
	if err != nil || v.(string) != "recompiled" {
		t.Fatalf("corrupt fallback: %v, %v", v, err)
	}
	if coldBuilds.Load() != 1 {
		t.Errorf("builds = %d, want 1 (recompile after corruption)", coldBuilds.Load())
	}
	st := coldCache.Stats()
	if st.CorruptEvictions != 1 {
		t.Errorf("CorruptEvictions = %d, want 1", st.CorruptEvictions)
	}
	if st.DiskWrites != 1 {
		t.Errorf("DiskWrites = %d, want 1 (clean republish)", st.DiskWrites)
	}
}

// TestCacheEvictsUndecodablePayload covers format drift the stamp
// failed to capture: the envelope verifies but Decode rejects the
// payload. The artifact must be evicted so the next cold start goes
// straight to a clean compile instead of re-chewing the same bytes.
func TestCacheEvictsUndecodablePayload(t *testing.T) {
	dir := t.TempDir()
	k := codecache.KeyFor([]byte("module"), "cfg")
	d := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
	if err := d.Store(k, []byte("valid envelope, nonsense payload")); err != nil {
		t.Fatal(err)
	}

	c := codecache.New(codecache.Options{})
	c.SetDisk(d)
	var builds atomic.Int32
	v, err := c.GetOrAddTiered(k, codecache.TierOps{
		Build: func() (any, error) {
			builds.Add(1)
			return "rebuilt", nil
		},
		Encode: func(v any) ([]byte, error) { return []byte(v.(string)), nil },
		Decode: func(p []byte) (any, error) {
			return nil, os.ErrInvalid // payload does not decode
		},
	})
	if err != nil || v.(string) != "rebuilt" {
		t.Fatalf("undecodable fallback: %v, %v", v, err)
	}
	if builds.Load() != 1 {
		t.Errorf("builds = %d, want 1", builds.Load())
	}
	if st := d.Stats(); st.CorruptEvictions != 1 {
		t.Errorf("CorruptEvictions = %d, want 1", st.CorruptEvictions)
	}
}

// TestCrossProcessSingleFlight models two processes (two caches, two
// disk handles, zero shared memory) cold-starting on the same module
// over one cache directory: the lock file must elect exactly one
// writer, the loser must wait out the winner's write instead of
// duplicating it, and both must end up with identical code.
func TestCrossProcessSingleFlight(t *testing.T) {
	dir := t.TempDir()
	k := codecache.KeyFor([]byte("module"), "cfg")

	const processes = 2
	stores := make([]*codecache.DiskStore, processes)
	caches := make([]*codecache.Cache, processes)
	for i := range stores {
		stores[i] = newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
		caches[i] = codecache.New(codecache.Options{})
		caches[i].SetDisk(stores[i])
	}

	var builds atomic.Int32
	start := make(chan struct{})
	results := make([]string, processes)
	var wg sync.WaitGroup
	for i := 0; i < processes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err := caches[i].GetOrAddTiered(k, codecache.TierOps{
				Build: func() (any, error) {
					builds.Add(1)
					// Long enough that the loser reaches its lock attempt
					// while the winner is still compiling.
					time.Sleep(30 * time.Millisecond)
					return "compiled code", nil
				},
				Encode: func(v any) ([]byte, error) { return []byte(v.(string)), nil },
				Decode: func(p []byte) (any, error) { return string(append([]byte(nil), p...)), nil },
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v.(string)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, r := range results {
		if r != "compiled code" {
			t.Errorf("process %d got %q", i, r)
		}
	}
	// Exactly one write: only the lock holder publishes; a loser that
	// compiled independently (wait timeout) must still not write.
	var totalWrites uint64
	for _, d := range stores {
		totalWrites += d.Stats().Writes
	}
	if totalWrites != 1 {
		t.Errorf("total disk writes = %d, want exactly 1", totalWrites)
	}
	if n := stores[0].Len(); n != 1 {
		t.Errorf("artifacts on disk = %d, want 1", n)
	}
	// The on-disk artifact is the winner's and serves future processes.
	late := codecache.New(codecache.Options{})
	late.SetDisk(newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp}))
	v, err := late.GetOrAddTiered(k, codecache.TierOps{
		Build:  func() (any, error) { t.Error("late process compiled"); return nil, os.ErrInvalid },
		Encode: func(v any) ([]byte, error) { return []byte(v.(string)), nil },
		Decode: func(p []byte) (any, error) { return string(append([]byte(nil), p...)), nil },
	})
	if err != nil || v.(string) != "compiled code" {
		t.Errorf("late process: %v, %v", v, err)
	}
}

// TestWaitForArtifact pins the loser-side protocol in isolation: a
// process that lost the write race blocks until the winner's artifact
// lands, then loads it and counts a wait-hit.
func TestWaitForArtifact(t *testing.T) {
	dir := t.TempDir()
	k := codecache.KeyFor([]byte("module"), "cfg")
	winner := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})
	loser := newDisk(t, dir, codecache.DiskOptions{Stamp: testStamp})

	unlock, acquired := winner.TryLock(k)
	if !acquired {
		t.Fatal("winner could not lock an empty dir")
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		if err := winner.Store(k, []byte("published")); err != nil {
			t.Error(err)
		}
		unlock()
	}()

	payload, done, ok := loser.WaitForArtifact(k)
	if !ok {
		t.Fatal("WaitForArtifact gave up on a live writer")
	}
	if string(payload) != "published" {
		t.Errorf("payload = %q", payload)
	}
	done()
	if st := loser.Stats(); st.WaitHits != 1 {
		t.Errorf("WaitHits = %d, want 1", st.WaitHits)
	}

	// With no artifact and no lock, the wait returns immediately: the
	// writer gave up and the caller should compile.
	k2 := codecache.KeyFor([]byte("other"), "cfg")
	t0 := time.Now()
	if _, _, ok := loser.WaitForArtifact(k2); ok {
		t.Error("WaitForArtifact fabricated an artifact")
	}
	if d := time.Since(t0); d > time.Second {
		t.Errorf("lock-free wait took %v, want immediate return", d)
	}
}

// writeFile rewrites path with data (used to simulate corruption).
func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// reseal recomputes the trailing SHA-256 over a mutated envelope so
// the corruption under test is caught by a field check, not the
// checksum.
func reseal(data []byte) []byte {
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}
