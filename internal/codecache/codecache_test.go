package codecache_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wizgo/internal/codecache"
)

func TestGetPut(t *testing.T) {
	c := codecache.New(codecache.Options{})
	k := codecache.KeyFor([]byte("module-a"), "wizeng-spc")

	if _, ok := c.Get(k); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put(k, "artifact")
	v, ok := c.Get(k)
	if !ok || v.(string) != "artifact" {
		t.Fatalf("get after put: %v, %v", v, ok)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss 1 hit", st)
	}
}

func TestKeySeparatesConfigs(t *testing.T) {
	c := codecache.New(codecache.Options{})
	bytes := []byte("same module")
	kSPC := codecache.KeyFor(bytes, "wizeng-spc")
	kINT := codecache.KeyFor(bytes, "wizeng-int")
	if kSPC == kINT {
		t.Fatal("different configs produced the same key")
	}
	c.Put(kSPC, "spc-code")
	if _, ok := c.Get(kINT); ok {
		t.Error("config fingerprint not part of the lookup")
	}
}

func TestEviction(t *testing.T) {
	// One shard with capacity 4: after filling it, refreshing key 0 and
	// inserting 3 fresh keys must evict exactly keys 1..3 (the LRU ones).
	c := codecache.New(codecache.Options{Shards: 1, Capacity: 4})
	keys := make([]codecache.Key, 7)
	for i := range keys {
		keys[i] = codecache.KeyFor([]byte{byte(i)}, "cfg")
	}
	for i := 0; i < 4; i++ {
		c.Put(keys[i], i)
	}
	c.Get(keys[0]) // refresh key 0 so it is not an LRU victim
	for i := 4; i < 7; i++ {
		c.Put(keys[i], i)
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	if st := c.Stats(); st.Evictions != 3 {
		t.Errorf("evictions = %d, want 3", st.Evictions)
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Error("recently used entry was evicted")
	}
	for i := 1; i < 4; i++ {
		if _, ok := c.Get(keys[i]); ok {
			t.Errorf("LRU entry %d survived past capacity", i)
		}
	}
}

func TestGetOrAddSingleFlight(t *testing.T) {
	c := codecache.New(codecache.Options{})
	k := codecache.KeyFor([]byte("hot module"), "cfg")

	var builds atomic.Int32
	var wg sync.WaitGroup
	const goroutines = 32
	results := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v, err := c.GetOrAdd(k, func() (any, error) {
				builds.Add(1)
				return "built", nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Errorf("build ran %d times, want 1 (single-flight)", n)
	}
	for g, v := range results {
		if v.(string) != "built" {
			t.Fatalf("goroutine %d got %v", g, v)
		}
	}
}

func TestGetOrAddErrorNotCached(t *testing.T) {
	c := codecache.New(codecache.Options{})
	k := codecache.KeyFor([]byte("bad module"), "cfg")
	boom := errors.New("compile failed")

	if _, err := c.GetOrAdd(k, func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	v, err := c.GetOrAdd(k, func() (any, error) { return "ok now", nil })
	if err != nil || v.(string) != "ok now" {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
}

func TestGetOrAddBuildPanic(t *testing.T) {
	// A panicking build must not leak the in-flight entry: the caller
	// gets an error, nothing is cached, and a later call retries.
	c := codecache.New(codecache.Options{})
	k := codecache.KeyFor([]byte("panicky"), "cfg")

	_, err := c.GetOrAdd(k, func() (any, error) { panic("compiler bug") })
	if err == nil {
		t.Fatal("panicking build returned no error")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := c.GetOrAdd(k, func() (any, error) { return "recovered", nil })
		if err != nil || v.(string) != "recovered" {
			t.Errorf("retry after panic: %v, %v", v, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("retry after panic deadlocked on a leaked in-flight entry")
	}
}

func TestInvalidate(t *testing.T) {
	c := codecache.New(codecache.Options{})
	k := codecache.KeyFor([]byte("m"), "cfg")
	c.Put(k, 1)
	if !c.Invalidate(k) {
		t.Error("invalidate reported absent for a present key")
	}
	if _, ok := c.Get(k); ok {
		t.Error("entry survived invalidation")
	}
	if c.Invalidate(k) {
		t.Error("double invalidation reported present")
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	// Hammer all operations from many goroutines; correctness here is
	// "no race, no panic, bounded size" (run under -race in CI).
	c := codecache.New(codecache.Options{Shards: 8, Capacity: 64})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := codecache.KeyFor([]byte(fmt.Sprintf("m%d", i%97)), "cfg")
				switch i % 4 {
				case 0:
					c.Put(k, i)
				case 1:
					c.Get(k)
				case 2:
					if _, err := c.GetOrAdd(k, func() (any, error) { return i, nil }); err != nil {
						t.Error(err)
					}
				case 3:
					c.Invalidate(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Errorf("cache grew past capacity: %d", c.Len())
	}
}

// TestSingleFlightUnderEvictionRace pins the single-flight guarantees
// while capacity pressure is actively evicting (run with -race in CI):
// the sequential eviction tests above never exercise a build finishing
// into a shard whose entries are being churned by other keys. One shard
// with a capacity far below the live key count forces every GetOrAdd
// to race misses, publishes and evictions; the invariants are that a
// build's result is always the one every collapsed waiter sees, that
// results never cross keys, and that the cache never exceeds capacity.
func TestSingleFlightUnderEvictionRace(t *testing.T) {
	const (
		capacity   = 2
		keyCount   = 8
		goroutines = 16
		iterations = 300
	)
	c := codecache.New(codecache.Options{Shards: 1, Capacity: capacity})
	keys := make([]codecache.Key, keyCount)
	for i := range keys {
		keys[i] = codecache.KeyFor([]byte{byte(i)}, "cfg")
	}

	// builds[k] counts how often key k was actually built; with evictions
	// racing, rebuilds are legitimate, duplicate *concurrent* builds are
	// not — inflight collapse must hold even while the entry table churns.
	var builds [keyCount]atomic.Int64
	var inflight [keyCount]atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := (g + i) % keyCount
				v, err := c.GetOrAdd(keys[k], func() (any, error) {
					if inflight[k].Add(1) != 1 {
						t.Errorf("key %d: concurrent duplicate build", k)
					}
					builds[k].Add(1)
					// Widen the window in which an eviction of another
					// key can land inside this build.
					runtime.Gosched()
					inflight[k].Add(-1)
					return k, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(int) != k {
					t.Errorf("key %d returned value %v (cross-key leak)", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if c.Len() > capacity {
		t.Errorf("cache size %d exceeds capacity %d", c.Len(), capacity)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Error("test exercised no evictions — capacity pressure missing")
	}
	var totalBuilds int64
	for k := range builds {
		if builds[k].Load() == 0 {
			t.Errorf("key %d never built", k)
		}
		totalBuilds += builds[k].Load()
	}
	// Every build is a miss recorded under the shard lock; if collapse
	// broke, builds would exceed misses.
	if uint64(totalBuilds) != st.Misses {
		t.Errorf("%d builds != %d recorded misses", totalBuilds, st.Misses)
	}
}
