//go:build unix

package codecache

import (
	"os"
	"syscall"
)

// mapFile maps the file at path read-only, returning the mapped bytes
// and an unmap function. Loading via mmap means a cold start pays page
// faults only for the bytes it actually decodes, and N processes
// loading the same artifact share one copy in the page cache. An empty
// file (mmap of length 0 is an error on most unixes) and any mmap
// failure fall back to a plain read.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := int(st.Size())
	if size <= 0 {
		return []byte{}, func() {}, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Portable fallback: some filesystems refuse mmap.
		return readFile(path)
	}
	return data, func() { _ = syscall.Munmap(data) }, nil
}
