//go:build !unix

package codecache

// mapFile on platforms without a usable mmap syscall falls back to a
// plain read; the loading contract (bytes + done) is identical.
func mapFile(path string) ([]byte, func(), error) {
	return readFile(path)
}
