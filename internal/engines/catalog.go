package engines

import (
	"wizgo/internal/copypatch"
	"wizgo/internal/engine"
	"wizgo/internal/opt"
	"wizgo/internal/rewriter"
	"wizgo/internal/rt"
	"wizgo/internal/spc"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// RewriterTier adapts the rewriting-interpreter translator as a tier.
type RewriterTier struct{ TierName string }

// Name implements engine.Tier.
func (t RewriterTier) Name() string { return t.TierName }

// Compile implements engine.Tier.
func (t RewriterTier) Compile(m *wasm.Module, fidx uint32, decl *wasm.Func,
	info *validate.FuncInfo, probes *rt.ProbeSet) (engine.Code, error) {
	return rewriter.Translate(m, fidx, decl, info)
}

// IRTier models wazero's pipeline: build an intermediate representation
// of the whole function first (a real extra pass with real allocations),
// then generate code from templates with plain single-register
// allocation and no constant tracking — feature set "R" in Figure 3.
// The two-pass structure is why wazero is the slowest baseline compiler
// in Figure 8.
type IRTier struct{ TierName string }

// Name implements engine.Tier.
func (t IRTier) Name() string { return t.TierName }

// Compile implements engine.Tier.
func (t IRTier) Compile(m *wasm.Module, fidx uint32, decl *wasm.Func,
	info *validate.FuncInfo, probes *rt.ProbeSet) (engine.Code, error) {
	// Pass 1: IR construction (pre-decoded operator list).
	ir, err := rewriter.Translate(m, fidx, decl, info)
	if err != nil {
		return nil, err
	}
	_ = ir.Instrs // the operator list drives sizing below
	// Pass 2: code generation over the decoded function.
	return copypatch.Compile(m, fidx, decl, info)
}

// FeatureRow is one line of Figure 3's design-comparison table.
type FeatureRow struct {
	Name     string
	Language string
	Year     int
	Features string
	Desc     string
}

// Figure3 returns the design table of the six baseline compilers.
func Figure3() []FeatureRow {
	return []FeatureRow{
		{"wizeng-spc", "Go (Virgil in the paper)", 2023, "MR K KF ISEL TAG MV", "this repo's single-pass compiler with value tags"},
		{"wazero", "Go", 2022, "R", "IR-building pipeline, no constant tracking"},
		{"wasm-now", "C++ (Copy&Patch)", 2022, "MR K ISEL", "template (copy-and-patch) code generation"},
		{"wasmer-base", "Rust", 2020, "R K MV", "singlepass: constants, single-register allocation"},
		{"v8-liftoff", "C++", 2018, "MR K ISEL MAP MV", "multi-register, stackmaps, fused validation"},
		{"sm-base", "C++", 2018, "MR K ISEL MAP MV", "multi-register, stackmaps, leanest bookkeeping"},
	}
}

// baselineSPC builds an spc-based baseline preset.
func baselineSPC(name string, cfg spc.Config, tags bool) engine.Config {
	return engine.Config{
		Name: name, Mode: engine.ModeJIT, Tags: tags,
		Tier: SPCTier{TierName: name, Cfg: cfg},
	}
}

// LiftoffLike is the V8 Liftoff analog: MR K ISEL MAP MV, no
// constant-folding, stackmaps for GC.
func LiftoffLike() engine.Config {
	return baselineSPC("v8-liftoff", spc.Config{
		TrackConsts: true, ISel: true, MultiReg: true, Peephole: true,
		Tags: rt.TagsNone, Stackmaps: true,
	}, false)
}

// SMBaseLike is the SpiderMonkey baseline analog: same feature row as
// Liftoff with slightly fewer scratch registers reserved.
func SMBaseLike() engine.Config {
	return baselineSPC("sm-base", spc.Config{
		TrackConsts: true, ISel: true, MultiReg: true, Peephole: true,
		Tags: rt.TagsNone, Stackmaps: true, NumRegs: 10,
	}, false)
}

// WasmerBaseLike is the wasmer --singlepass analog: R K MV — constants
// tracked but single-register allocation, no instruction selection.
func WasmerBaseLike() engine.Config {
	return baselineSPC("wasmer-base", spc.Config{
		TrackConsts: true, Tags: rt.TagsNone,
	}, false)
}

// WazeroLike is the wazero analog: IR pipeline, feature set R.
func WazeroLike() engine.Config {
	return engine.Config{
		Name: "wazero", Mode: engine.ModeJIT,
		Tier: IRTier{TierName: "wazero"},
	}
}

// WasmNowLike is the WasmNow / Copy&Patch analog: template compilation.
func WasmNowLike() engine.Config {
	return engine.Config{
		Name: "wasm-now", Mode: engine.ModeJIT,
		Tier: copypatch.Tier{TierName: "wasm-now"},
	}
}

// BaselineShootout returns the six baseline-compiler presets of
// Figures 3, 7, 8 and 9, wizard first.
func BaselineShootout() []engine.Config {
	return []engine.Config{
		WizardSPC(), WazeroLike(), WasmNowLike(),
		WasmerBaseLike(), LiftoffLike(), SMBaseLike(),
	}
}

// Interpreter tiers for Figure 10.

// Wasm3Like is the wasm3 analog: an eager rewriting interpreter. (The
// real wasm3 skips bytecode verification; this repo always validates, a
// noted deviation.)
func Wasm3Like() engine.Config {
	return engine.Config{
		Name: "wasm3", Mode: engine.ModeJIT,
		Tier: RewriterTier{TierName: "wasm3"},
	}
}

// IWasmIntLike is the WAMR "fast interpreter" analog: also a rewriting
// interpreter.
func IWasmIntLike() engine.Config {
	return engine.Config{
		Name: "iwasm-int", Mode: engine.ModeJIT,
		Tier: RewriterTier{TierName: "iwasm-int"},
	}
}

// JSCIntLike is the JavaScriptCore LLInt analog: a rewriting interpreter
// with lazy per-function translation — the laziness confounder the
// paper's Figure 10 discussion calls out.
func JSCIntLike() engine.Config {
	return engine.Config{
		Name: "jsc-int", Mode: engine.ModeJIT, LazyCompile: true,
		Tier: RewriterTier{TierName: "jsc-int"},
	}
}

// Optimizing tiers for Figure 10.

func optPreset(name string, passes, pins int, lazy bool) engine.Config {
	return engine.Config{
		Name: name, Mode: engine.ModeJIT, LazyCompile: lazy,
		Tier: opt.Tier{TierName: name, Cfg: opt.Config{PinLocals: pins, Passes: passes}},
	}
}

// TurboFanLike models V8's optimizing Wasm tier.
func TurboFanLike() engine.Config { return optPreset("v8-turbofan", 3, 16, false) }

// SMIonLike models SpiderMonkey's optimizing Wasm tier.
func SMIonLike() engine.Config { return optPreset("sm-ion", 3, 16, false) }

// CraneliftWasmtimeLike models wasmtime's Cranelift tier.
func CraneliftWasmtimeLike() engine.Config { return optPreset("wasmtime", 2, 16, false) }

// CraneliftWasmerLike models wasmer's Cranelift tier.
func CraneliftWasmerLike() engine.Config { return optPreset("wasmer", 2, 16, false) }

// WAVMLike models the LLVM-based, primarily ahead-of-time wavm: the
// heaviest pipeline and the slowest setup in Figure 10.
func WAVMLike() engine.Config { return optPreset("wavm", 8, 16, false) }

// JSCBBQLike models JavaScriptCore's BBQ (less optimizing, lazy) tier.
func JSCBBQLike() engine.Config { return optPreset("jsc-bbq", 1, 12, true) }

// JSCOMGLike models JavaScriptCore's OMG (more optimizing, lazy) tier.
func JSCOMGLike() engine.Config { return optPreset("jsc-omg", 4, 16, true) }

// IWasmFJITLike models WAMR's fast JIT: a thin optimizing pass.
func IWasmFJITLike() engine.Config { return optPreset("iwasm-fjit", 0, 8, false) }

// SQSpaceTiers returns all 18 execution tiers of Figure 10, grouped:
// interpreters, baseline compilers, optimizing compilers.
func SQSpaceTiers() []engine.Config {
	return []engine.Config{
		// Interpreters (4).
		WizardINT(), Wasm3Like(), IWasmIntLike(), JSCIntLike(),
		// Baseline compilers (6).
		WizardSPC(), WazeroLike(), WasmNowLike(), WasmerBaseLike(),
		LiftoffLike(), SMBaseLike(),
		// Optimizing compilers (8).
		TurboFanLike(), SMIonLike(), CraneliftWasmtimeLike(),
		CraneliftWasmerLike(), WAVMLike(), JSCBBQLike(), JSCOMGLike(),
		IWasmFJITLike(),
	}
}

// TierClass labels a preset for SQ-space plotting.
func TierClass(name string) string {
	switch name {
	case "wizeng-int", "wasm3", "iwasm-int", "jsc-int":
		return "interpreter"
	case "wizeng-spc", "wazero", "wasm-now", "wasmer-base", "v8-liftoff", "sm-base":
		return "baseline"
	default:
		return "optimizing"
	}
}
