package engines_test

import (
	"testing"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/wasm"
)

// buildMixed returns a module exercising loops, calls, memory, floats,
// br_table and multi-value — a smoke program for every tier.
func buildMixed() []byte {
	b := wasm.NewBuilder()
	b.AddMemory(1, 2)

	ift := wasm.FuncType{Params: []wasm.ValueType{wasm.I32}, Results: []wasm.ValueType{wasm.I32}}
	double := b.NewFunc("double", ift)
	double.LocalGet(0).I32Const(2).Op(wasm.OpI32Mul).End()

	f := b.NewFunc("work", wasm.FuncType{
		Params:  []wasm.ValueType{wasm.I32},
		Results: []wasm.ValueType{wasm.I64},
	})
	i := f.AddLocal(wasm.I32)
	acc := f.AddLocal(wasm.I64)
	facc := f.AddLocal(wasm.F64)
	f.Block(wasm.BlockEmpty)
	f.LocalGet(0).I32Const(0).Op(wasm.OpI32LeS).BrIf(0)
	f.Loop(wasm.BlockEmpty)
	// acc += double(i) + i*i
	f.LocalGet(i).Call(double.Idx)
	f.LocalGet(i).LocalGet(i).Op(wasm.OpI32Mul)
	f.Op(wasm.OpI32Add)
	f.Op(wasm.OpI64ExtendI32S)
	f.LocalGet(acc).Op(wasm.OpI64Add).LocalSet(acc)
	// facc += sqrt(i)
	f.LocalGet(i).Op(wasm.OpF64ConvertI32S).Op(wasm.OpF64Sqrt)
	f.LocalGet(facc).Op(wasm.OpF64Add).LocalSet(facc)
	// memory[i%64536*4..] = i
	f.LocalGet(i).I32Const(16384).Op(wasm.OpI32RemU).I32Const(4).Op(wasm.OpI32Mul)
	f.LocalGet(i).Store(wasm.OpI32Store, 0)
	f.LocalGet(i).I32Const(1).Op(wasm.OpI32Add).LocalTee(i)
	f.LocalGet(0).Op(wasm.OpI32LtS).BrIf(0)
	f.End()
	f.End()
	// result = acc + i64(facc) + i64(mem[40])
	f.LocalGet(acc)
	f.LocalGet(facc).Op(wasm.OpI64TruncF64S).Op(wasm.OpI64Add)
	f.I32Const(40).Load(wasm.OpI32Load, 0).Op(wasm.OpI64ExtendI32U).Op(wasm.OpI64Add)
	f.End()
	b.Export("work", f.Idx)
	return b.Encode()
}

// TestAllTiersAgree runs the mixed workload on all 18 SQ-space tiers and
// demands bit-identical results.
func TestAllTiersAgree(t *testing.T) {
	bytes := buildMixed()
	var want int64
	first := true
	for _, cfg := range engines.SQSpaceTiers() {
		inst, err := engine.New(cfg, nil).Instantiate(bytes)
		if err != nil {
			t.Fatalf("%s: instantiate: %v", cfg.Name, err)
		}
		got, err := inst.Call("work", wasm.ValI32(5000))
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if first {
			want = got[0].I64()
			first = false
			if want == 0 {
				t.Fatal("workload computed zero; test is vacuous")
			}
			continue
		}
		if got[0].I64() != want {
			t.Errorf("%s: got %d, want %d", cfg.Name, got[0].I64(), want)
		}
	}
}

func TestTierClassCovers(t *testing.T) {
	classes := map[string]int{}
	for _, cfg := range engines.SQSpaceTiers() {
		classes[engines.TierClass(cfg.Name)]++
	}
	if classes["interpreter"] != 4 || classes["baseline"] != 6 || classes["optimizing"] != 8 {
		t.Fatalf("unexpected class sizes: %v", classes)
	}
}

func TestFigure3Rows(t *testing.T) {
	rows := engines.Figure3()
	if len(rows) != 6 {
		t.Fatalf("Figure 3 must list six compilers, got %d", len(rows))
	}
	if rows[0].Name != "wizeng-spc" {
		t.Fatalf("first row should be wizeng-spc, got %s", rows[0].Name)
	}
}
