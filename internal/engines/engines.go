// Package engines provides the engine presets used throughout the
// evaluation: the Wizard configurations (interpreter and Wizard-SPC with
// every ablation of Figures 4 and 5), the five comparator baseline
// compilers of Figure 3 with their feature sets and structurally
// different compile pipelines, and the interpreter/optimizing tiers that
// fill out the 18-engine SQ-space of Figure 10.
package engines

import (
	"wizgo/internal/engine"
	"wizgo/internal/rt"
	"wizgo/internal/spc"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
)

// SPCTier adapts the single-pass compiler as an engine tier.
type SPCTier struct {
	TierName string
	Cfg      spc.Config
}

// Name implements engine.Tier.
func (t SPCTier) Name() string { return t.TierName }

// Compile implements engine.Tier.
func (t SPCTier) Compile(m *wasm.Module, fidx uint32, decl *wasm.Func,
	info *validate.FuncInfo, probes *rt.ProbeSet) (engine.Code, error) {
	return spc.Compile(m, fidx, decl, info, probes, t.Cfg)
}

// Catalog returns one representative configuration per executor family
// — the in-place interpreter, the single-pass compiler (machine-code
// executor), the rewriting interpreter, and the tiered pipeline that
// transitions between them. Cross-cutting engine behavior (linking,
// import resolution, interruption) is tested across exactly this set,
// because each family has its own execution loop and therefore its own
// copy of every cross-cutting check.
func Catalog() []engine.Config {
	return []engine.Config{
		WizardINT(),
		WizardSPC(),
		Wasm3Like(),
		WizardTiered(50),
	}
}

// DifferentialMatrix returns the full cross-execution test matrix: every
// Catalog configuration crossed with the static analysis enabled and
// disabled. The analysis-off variants carry a "/noanalysis" name suffix
// so oracle reports name the exact axis that diverged. This is the
// engine set the differential-testing oracle (internal/difftest) runs
// every generated module through.
func DifferentialMatrix() []engine.Config {
	var out []engine.Config
	for _, base := range Catalog() {
		on := base
		on.NoAnalysis = false
		off := base
		off.NoAnalysis = true
		off.Name = base.Name + "/noanalysis"
		out = append(out, on, off)
	}
	return out
}

// ByName resolves a preset by its figure name: any of the 18 SQ-space
// tiers plus "wizeng-tiered". Shared by cmd/wizgo, the serving example,
// and tests.
func ByName(name string) (engine.Config, bool) {
	cfgs := SQSpaceTiers()
	cfgs = append(cfgs, WizardTiered(100))
	for _, c := range cfgs {
		if c.Name == name {
			return c, true
		}
	}
	return engine.Config{}, false
}

// WizardINT is the in-place interpreter configuration (Wizard-INT).
func WizardINT() engine.Config {
	return engine.Config{Name: "wizeng-int", Mode: engine.ModeInterp, Tags: true}
}

// WizardSPC is the default Wizard-SPC configuration: all optimizations,
// on-demand tags.
func WizardSPC() engine.Config {
	return engine.Config{
		Name: "wizeng-spc", Mode: engine.ModeJIT, Tags: true,
		Tier: SPCTier{TierName: "wizard-spc", Cfg: spc.Wizard()},
	}
}

// WizardTiered is the production-style configuration: start in the
// interpreter, tier up hot loops via OSR.
func WizardTiered(osrThreshold int) engine.Config {
	return engine.Config{
		Name: "wizeng-tiered", Mode: engine.ModeTiered, Tags: true,
		Tier:          SPCTier{TierName: "wizard-spc", Cfg: spc.Wizard()},
		LazyCompile:   true,
		CallThreshold: 2,
		OSRThreshold:  osrThreshold,
	}
}

// SPCVariant returns Wizard-SPC with a modified compiler config, used by
// the Figure 4 and Figure 5 ablations.
func SPCVariant(name string, mutate func(*spc.Config)) engine.Config {
	cfg := spc.Wizard()
	mutate(&cfg)
	return engine.Config{
		Name: name, Mode: engine.ModeJIT, Tags: cfg.Tags != rt.TagsNone,
		Tier: SPCTier{TierName: name, Cfg: cfg},
	}
}

// Figure4Variants returns the optimization-ablation configurations of
// Figure 4, in the paper's order.
func Figure4Variants() []engine.Config {
	return []engine.Config{
		SPCVariant("allopt", func(c *spc.Config) {}),
		SPCVariant("nok", func(c *spc.Config) { c.TrackConsts = false }),
		SPCVariant("nokfold", func(c *spc.Config) { c.ConstFold = false }),
		SPCVariant("noisel", func(c *spc.Config) { c.ISel = false }),
		SPCVariant("nomr", func(c *spc.Config) { c.MultiReg = false }),
	}
}

// Figure5Variants returns the value-tag configurations of Figure 5 plus
// the notags baseline.
func Figure5Variants() []engine.Config {
	tag := func(name string, mode rt.TagMode) engine.Config {
		return SPCVariant(name, func(c *spc.Config) { c.Tags = mode })
	}
	return []engine.Config{
		tag("notags", rt.TagsNone),
		tag("eagertags", rt.TagsEager),
		tag("eagertags-o", rt.TagsEagerOperands),
		tag("eagertags-l", rt.TagsEagerLocals),
		tag("on-demand", rt.TagsOnDemand),
		tag("lazytags", rt.TagsLazy),
	}
}
