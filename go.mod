module wizgo

go 1.24
