// Package wizgo's root benchmark suite regenerates every figure of the
// paper as Go benchmarks. Each BenchmarkFigN corresponds to a figure;
// run a single one with e.g.
//
//	go test -bench 'Fig4' -benchmem
//
// The full tables (all 78 line items, suite means with min/max bars) are
// produced by cmd/wizgo-bench; these benchmarks exercise the same
// measurement paths on one representative line item per suite so the
// whole suite completes in minutes. Custom metrics:
//
//	speedup-vs-interp   main-time ratio (Figures 4, 9, 10)
//	rel-time-vs-notags  tagging overhead ratio (Figure 5)
//	probe-overhead      instrumentation slowdown (Figure 6)
//	MB/s                compile throughput via b.SetBytes (Figure 8)
package wizgo

import (
	"fmt"
	"testing"
	"time"

	"wizgo/internal/engine"
	"wizgo/internal/engines"
	"wizgo/internal/harness"
	"wizgo/internal/heap"
	"wizgo/internal/monitors"
	"wizgo/internal/opt"
	"wizgo/internal/rt"
	"wizgo/internal/spc"
	"wizgo/internal/validate"
	"wizgo/internal/wasm"
	"wizgo/internal/workloads"
)

// reps returns one representative item per suite (kept small so the
// whole benchmark suite runs quickly).
func reps() []workloads.Item {
	return []workloads.Item{
		workloads.PolyBench()[0], // gemm
		workloads.Libsodium()[0], // stream_chacha20
		workloads.Ostrich()[3],   // crc
	}
}

// mainTime runs _start once on a pre-instantiated fresh engine.
func mainTime(b *testing.B, cfg engine.Config, bytes []byte) time.Duration {
	b.Helper()
	s, err := harness.RunOnce(cfg, bytes)
	if err != nil {
		b.Fatal(err)
	}
	return s.Main
}

func benchMain(b *testing.B, cfg engine.Config, item workloads.Item, baseline engine.Config) {
	b.Helper()
	var base time.Duration
	if baseline.Name != "" {
		base = mainTime(b, baseline, item.Bytes)
	}
	inst, err := engine.New(cfg, nil).Instantiate(item.Bytes)
	if err != nil {
		b.Fatal(err)
	}
	start, _ := inst.RT.FuncByName("_start")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.CallFunc(start); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if base != 0 {
		per := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(base)/float64(per), "speedup-vs-interp")
	}
}

// BenchmarkFig4 measures the optimization ablations of Wizard-SPC.
func BenchmarkFig4(b *testing.B) {
	interp := engines.WizardINT()
	for _, cfg := range engines.Figure4Variants() {
		for _, item := range reps() {
			b.Run(cfg.Name+"/"+item.Name, func(b *testing.B) {
				benchMain(b, cfg, item, interp)
			})
		}
	}
}

// BenchmarkFig5 measures value-tagging configurations against notags.
func BenchmarkFig5(b *testing.B) {
	variants := engines.Figure5Variants()
	notags := variants[0]
	for _, cfg := range variants[1:] {
		for _, item := range reps() {
			b.Run(cfg.Name+"/"+item.Name, func(b *testing.B) {
				base := mainTime(b, notags, item.Bytes)
				inst, err := engine.New(cfg, nil).Instantiate(item.Bytes)
				if err != nil {
					b.Fatal(err)
				}
				start, _ := inst.RT.FuncByName("_start")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.CallFunc(start); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				per := b.Elapsed() / time.Duration(b.N)
				b.ReportMetric(float64(per)/float64(base), "rel-time-vs-notags")
			})
		}
	}
}

// BenchmarkFig6 measures branch-monitor overhead for int/jit/optjit.
func BenchmarkFig6(b *testing.B) {
	cfgs := []struct {
		name string
		cfg  engine.Config
	}{
		{"int", engines.WizardINT()},
		{"jit", engines.SPCVariant("jit-probes", func(c *spc.Config) { c.OptProbes = false })},
		{"optjit", engines.WizardSPC()},
	}
	for _, c := range cfgs {
		for _, item := range reps() {
			b.Run(c.name+"/"+item.Name, func(b *testing.B) {
				unprobed := mainTime(b, c.cfg, item.Bytes)
				inst, err := engine.New(c.cfg, nil).Instantiate(item.Bytes)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := monitors.AttachBranchMonitor(inst); err != nil {
					b.Fatal(err)
				}
				start, _ := inst.RT.FuncByName("_start")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.CallFunc(start); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				per := b.Elapsed() / time.Duration(b.N)
				b.ReportMetric(float64(per-unprobed)/float64(unprobed), "probe-overhead")
			})
		}
	}
}

// BenchmarkFig7 measures total execution time of the six baselines.
func BenchmarkFig7(b *testing.B) {
	for _, cfg := range engines.BaselineShootout() {
		for _, item := range reps() {
			b.Run(cfg.Name+"/"+item.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := harness.RunOnce(cfg, item.Bytes); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig8 measures compile throughput (MB/s via SetBytes): decode,
// validate, and compile a fresh instance each iteration without running.
func BenchmarkFig8(b *testing.B) {
	for _, cfg := range engines.BaselineShootout() {
		for _, item := range reps() {
			b.Run(cfg.Name+"/"+item.Name, func(b *testing.B) {
				b.SetBytes(int64(len(item.Bytes)))
				for i := 0; i < b.N; i++ {
					if _, err := engine.New(cfg, nil).Instantiate(item.BytesM0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig9 reports both SQ-space coordinates per baseline compiler.
func BenchmarkFig9(b *testing.B) {
	interp := engines.WizardINT()
	item := reps()[0]
	for _, cfg := range engines.BaselineShootout() {
		b.Run(cfg.Name, func(b *testing.B) {
			base := mainTime(b, interp, item.Bytes)
			var setup time.Duration
			var main time.Duration
			for i := 0; i < b.N; i++ {
				s, err := harness.RunOnce(cfg, item.Bytes)
				if err != nil {
					b.Fatal(err)
				}
				setup += s.Setup
				main += s.Main
			}
			b.ReportMetric(float64(len(item.Bytes))/1e6/(setup.Seconds()/float64(b.N)), "setup-MB/s")
			b.ReportMetric(float64(base)/(float64(main)/float64(b.N)), "speedup-vs-interp")
		})
	}
}

// BenchmarkFig10 reports SQ-space coordinates for all 18 tiers using the
// adjusted-time methodology.
func BenchmarkFig10(b *testing.B) {
	item := reps()[0]
	interp := engines.WizardINT()
	base := mainTime(b, interp, item.Bytes)
	for _, cfg := range engines.SQSpaceTiers() {
		b.Run(cfg.Name, func(b *testing.B) {
			startup, err := harness.StartupTime(cfg, 5)
			if err != nil {
				b.Fatal(err)
			}
			var adj, setup time.Duration
			for i := 0; i < b.N; i++ {
				at, err := harness.MeasureAdjusted(cfg, item, 1, startup)
				if err != nil {
					b.Fatal(err)
				}
				adj += at.Adjusted
				setup += at.SetupUB
			}
			setupSec := setup.Seconds() / float64(b.N)
			if setupSec <= 0 {
				setupSec = 1e-9
			}
			b.ReportMetric(float64(len(item.Bytes))/1e6/setupSec, "setup-MB/s")
			b.ReportMetric(float64(base)/(float64(adj)/float64(b.N)), "adj-speedup-vs-interp")
		})
	}
}

// BenchmarkCompileOnly isolates single-pass compilation itself (no
// decode/validate), the purest form of Figure 8's numerator.
func BenchmarkCompileOnly(b *testing.B) {
	item := reps()[0]
	m, err := wasm.Decode(item.Bytes)
	if err != nil {
		b.Fatal(err)
	}
	infos, err := validate.Module(m)
	if err != nil {
		b.Fatal(err)
	}
	bodyBytes := 0
	for _, f := range m.Funcs {
		bodyBytes += len(f.Body)
	}
	b.Run("wizard-spc", func(b *testing.B) {
		b.SetBytes(int64(bodyBytes))
		for i := 0; i < b.N; i++ {
			for fi := range m.Funcs {
				if _, err := spc.Compile(m, uint32(fi), &m.Funcs[fi], &infos[fi], nil, spc.Wizard()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("opt-3pass", func(b *testing.B) {
		b.SetBytes(int64(bodyBytes))
		cfg := opt.Config{PinLocals: 16, Passes: 3}
		for i := 0; i < b.N; i++ {
			for fi := range m.Funcs {
				if _, err := opt.Compile(m, uint32(fi), &m.Funcs[fi], &infos[fi], nil, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationSnapshot measures the abstract-state snapshot cost
// that DESIGN.md calls out: the memcpy strategy on a frame of the given
// size — the quantity the paper says must stay linear to avoid JIT
// bombs.
func BenchmarkAblationSnapshot(b *testing.B) {
	build := func(locals int) []byte {
		bb := wasm.NewBuilder()
		f := bb.NewFunc("f", wasm.FuncType{Results: []wasm.ValueType{wasm.I32}})
		for i := 0; i < locals; i++ {
			f.AddLocal(wasm.I32)
		}
		// A chain of ifs forces a snapshot per split.
		for i := 0; i < 32; i++ {
			f.I32Const(int32(i)).If(wasm.BlockEmpty).End()
		}
		f.I32Const(0)
		f.End()
		bb.Export("f", f.Idx)
		return bb.Encode()
	}
	for _, locals := range []int{8, 256, 4096} {
		bytes := build(locals)
		m, _ := wasm.Decode(bytes)
		infos, err := validate.Module(m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(locals), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spc.Compile(m, 0, &m.Funcs[0], &infos[0], nil, spc.Wizard()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n < 100:
		return "locals-8"
	case n < 1000:
		return "locals-256"
	default:
		return "locals-4096"
	}
}

// BenchmarkAblationOSR measures tiered execution against pure tiers on a
// hot loop: the tiered engine should land near the JIT, far above the
// interpreter.
func BenchmarkAblationOSR(b *testing.B) {
	item := reps()[1]
	for _, cfg := range []engine.Config{
		engines.WizardINT(), engines.WizardTiered(100), engines.WizardSPC(),
	} {
		b.Run(cfg.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.RunOnce(cfg, item.Bytes); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInterpreterDispatch isolates raw interpreter throughput on a
// pure arithmetic loop, for regression tracking of the hot loop.
func BenchmarkInterpreterDispatch(b *testing.B) {
	bb := wasm.NewBuilder()
	f := bb.NewFunc("spin", wasm.FuncType{Params: []wasm.ValueType{wasm.I64}, Results: []wasm.ValueType{wasm.I64}})
	acc := f.AddLocal(wasm.I64)
	f.Loop(wasm.BlockEmpty)
	f.LocalGet(acc).I64Const(3).Op(wasm.OpI64Add).LocalSet(acc)
	f.LocalGet(0).I64Const(1).Op(wasm.OpI64Sub).LocalTee(0)
	f.I64Const(0).Op(wasm.OpI64GtS)
	f.BrIf(0)
	f.End()
	f.LocalGet(acc)
	f.End()
	bb.Export("spin", f.Idx)
	bytes := bb.Encode()
	for _, cfg := range []engine.Config{engines.WizardINT(), engines.WizardSPC()} {
		b.Run(cfg.Name, func(b *testing.B) {
			inst, err := engine.New(cfg, nil).Instantiate(bytes)
			if err != nil {
				b.Fatal(err)
			}
			fn, _ := inst.RT.FuncByName("spin")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := inst.CallFunc(fn, wasm.ValI64(100000)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkInstantiate quantifies the compile-once / instantiate-many
// split on a polybench module: "full" pays decode+validate+compile per
// iteration (the old single-shot Instantiate(bytes) path), "cached"
// instantiates from a pre-compiled CompiledModule and pays only the
// link cost. The ratio is the serving amortization factor.
func BenchmarkInstantiate(b *testing.B) {
	item := workloads.PolyBench()[0] // gemm
	cfg := engines.WizardSPC()
	e := engine.New(cfg, nil)

	// The old path: every load decodes, validates, compiles, and
	// allocates a fresh value stack, with nothing reused.
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Instantiate(item.Bytes); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cm, err := e.Compile(item.Bytes)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst, err := cm.Instantiate()
			if err != nil {
				b.Fatal(err)
			}
			inst.Release()
		}
	})
}

// BenchmarkInstantiatePooled extends BenchmarkInstantiate one level up
// the amortization ladder: "instantiate" is the PR-1 cached path (link
// a fresh instance from the CompiledModule, recycling only the value
// stack), "pooled" recycles the whole instance — Get resets memory
// via dirty-granule replay, globals and tables from the snapshot. Each
// pooled iteration times Get+Put around an untimed gemm run, so the
// reset pays for a genuinely mutated 1 MiB memory (the matrices gemm
// initializes and writes) every iteration, not for a clean instance.
func BenchmarkInstantiatePooled(b *testing.B) {
	item := workloads.PolyBench()[0] // gemm: 1 MiB memory, 3 matrices written
	e := engine.New(engines.WizardSPC(), nil)
	cm, err := e.Compile(item.Bytes)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("instantiate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, err := cm.Instantiate()
			if err != nil {
				b.Fatal(err)
			}
			inst.Release()
		}
	})

	b.Run("pooled", func(b *testing.B) {
		pool := cm.NewPool(1)
		defer pool.Close()
		inst, err := pool.Get() // prime: the one miss
		if err != nil {
			b.Fatal(err)
		}
		start, ok := inst.RT.FuncByName("_start")
		if !ok {
			b.Fatal("gemm has no _start")
		}
		fidx := start.Idx
		if _, err := inst.CallFunc(start); err != nil {
			b.Fatal(err)
		}
		pool.Put(inst)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inst, err := pool.Get() // timed: replays gemm's dirty granules
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if _, err := inst.CallFunc(inst.RT.Funcs[fidx]); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			pool.Put(inst)
		}
		b.StopTimer()
		st := pool.Stats()
		if n := st.ResetsOnPut + st.ResetsOnGet; n > 0 {
			b.ReportMetric(float64(st.ResetTime.Nanoseconds())/float64(n), "reset-ns/op")
		}
	})
}

// manyFuncModule synthesizes a module with n independent functions of
// real compile weight (nested control flow, memory traffic, arithmetic
// chains), the shape that makes per-function compile fan-out pay —
// workload line items have only two functions each.
func manyFuncModule(n int) []byte {
	bb := wasm.NewBuilder()
	bb.AddMemory(1, 1)
	for fi := 0; fi < n; fi++ {
		f := bb.NewFunc(fmt.Sprintf("work%d", fi),
			wasm.FuncType{Params: []wasm.ValueType{wasm.I64}, Results: []wasm.ValueType{wasm.I64}})
		acc := f.AddLocal(wasm.I64)
		tmp := f.AddLocal(wasm.I64)
		for k := 0; k < 40; k++ {
			f.LocalGet(acc).LocalGet(0).I64Const(int64(fi*40 + k + 1)).Op(wasm.OpI64Mul)
			f.Op(wasm.OpI64Add).LocalSet(acc)
			f.LocalGet(acc).I64Const(int64(k + 3)).Op(wasm.OpI64Shl).LocalSet(tmp)
			f.LocalGet(acc).LocalGet(tmp).Op(wasm.OpI64Xor).LocalSet(acc)
			f.LocalGet(acc).I64Const(1).Op(wasm.OpI64And).Op(wasm.OpI64Eqz)
			f.If(wasm.BlockEmpty)
			f.LocalGet(acc).I64Const(int64(k)).Op(wasm.OpI64Add).LocalSet(acc)
			f.End()
			f.I32Const(int32(k%64)).LocalGet(acc).Store(wasm.OpI64Store, 0)
			f.I32Const(int32(k%64)).Load(wasm.OpI64Load, 0).LocalGet(acc)
			f.Op(wasm.OpI64Add).LocalSet(acc)
		}
		f.LocalGet(acc)
		f.End()
		bb.Export(fmt.Sprintf("work%d", fi), f.Idx)
	}
	return bb.Encode()
}

// BenchmarkCompileParallel measures per-function compile fan-out on a
// 64-function module: serial (1 worker) vs all cores. The speedup
// scales with core count; on a single-core host the pool degenerates to
// serial and the two variants measure the same work.
func BenchmarkCompileParallel(b *testing.B) {
	module := manyFuncModule(64)
	for _, workers := range []int{1, 0} { // 1 = serial, 0 = GOMAXPROCS
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			cfg := engines.WizardSPC()
			cfg.CompileWorkers = workers
			e := engine.New(cfg, nil)
			b.SetBytes(int64(len(module)))
			for i := 0; i < b.N; i++ {
				if _, err := e.Compile(module); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServiceThroughput runs the harness's serving measurement:
// compile once, instantiate+run many, reporting compile throughput and
// the amortization factor as custom metrics.
func BenchmarkServiceThroughput(b *testing.B) {
	item := workloads.Ostrich()[3] // crc
	for i := 0; i < b.N; i++ {
		s, err := harness.MeasureService(engines.WizardSPC(), item.Bytes, 4)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(s.CompileThroughput(), "compile-MB/s")
			b.ReportMetric(s.Amortization(), "amortization-x")
		}
	}
}

// BenchmarkGCRootScan compares tag scanning and stackmap scanning of a
// deep frame stack — the dynamic-cost side of the paper's Section IV-C
// trade-off.
func BenchmarkGCRootScan(b *testing.B) {
	ctx := &rt.Context{Stack: rt.NewValueStack(1<<16, true)}
	info := &validate.FuncInfo{LocalTypes: []wasm.ValueType{wasm.ExternRef, wasm.I64}}
	fn := &rt.FuncInst{Info: info}
	for i := 0; i < 64; i++ {
		base := i * 64
		for s := 0; s < 64; s++ {
			ctx.Stack.Tags[base+s] = wasm.TagI64
		}
		ctx.Stack.Tags[base] = wasm.TagRef
		ctx.Stack.Slots[base] = uint64(i + 1)
		ctx.PushFrame(rt.FrameInfo{Kind: rt.FrameInterp, Func: fn, VFP: base, SP: base + 64})
	}
	h := heap.New(heap.ScanTags)
	for i := 0; i < 64; i++ {
		h.Alloc(uint64(i))
	}
	b.Run("tags", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := h.StackRoots(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
